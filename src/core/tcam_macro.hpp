// TcamMacro: the deployable unit. Combines functional entry management
// (allocate / write / erase / priority search) with hardware cost accounting
// from the calibrated bank model and the write scheduler, so applications
// can run real workloads and read off energy/latency totals.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "array/bank.hpp"
#include "tcam/write_schedule.hpp"

namespace fetcam::core {

struct MacroStats {
    std::uint64_t searches = 0;
    std::uint64_t hits = 0;
    std::uint64_t writes = 0;
    std::uint64_t erases = 0;
    double searchEnergy = 0.0;  ///< [J] accumulated
    double writeEnergy = 0.0;   ///< [J] accumulated
    double totalEnergy() const { return searchEnergy + writeEnergy; }
};

class TcamMacro {
public:
    /// Functional (word-storage) capacity ceiling. The analytic bank model
    /// prices arbitrarily large capacities, but a macro also materializes
    /// every entry in memory; beyond this the constructor raises a
    /// structured InvalidSpec instead of attempting a multi-GiB resize (or,
    /// worse, silently truncating the capacity as the old int cast did).
    static constexpr std::size_t kMaxFunctionalCapacity = std::size_t{1} << 28;

    /// Build a macro of at least `capacity` words. Runs the calibration
    /// circuit simulations once, up front — through `sim` when provided, so
    /// a characterization cache can stand in for the solver.
    TcamMacro(const device::TechCard& tech, const array::ArrayConfig& subArray,
              std::size_t capacity, const array::WorkloadProfile& workload = {},
              const array::WordSimFn& sim = {});

    std::size_t capacity() const { return entries_.size(); }
    std::size_t occupancy() const { return occupied_; }
    int wordBits() const { return config_.wordBits; }

    /// Store a word in the first free row; returns the row. Throws
    /// std::length_error when full, std::invalid_argument on width mismatch.
    int write(const tcam::TernaryWord& word);
    /// Store at a specific row (TCAM priority is the row index).
    void writeAt(int row, const tcam::TernaryWord& word);
    void erase(int row);
    const std::optional<tcam::TernaryWord>& entryAt(int row) const;

    /// Priority search: lowest matching row index, as the hardware priority
    /// encoder would report. Accounts one search worth of energy.
    std::optional<int> search(const tcam::TernaryWord& key);

    /// Batch priority search: result[i] is what search(keys[i]) would have
    /// returned, with identical stats/energy accounting, but the (read-only)
    /// entry scans run across `jobs` worker threads (0 = process default).
    /// Deterministic for any jobs value.
    std::vector<std::optional<int>> searchMany(const std::vector<tcam::TernaryWord>& keys,
                                               int jobs = 0);

    const MacroStats& stats() const { return stats_; }
    const array::BankMetrics& hardware() const { return bank_; }
    double energyPerSearch() const { return bank_.totalPerSearch(); }
    double energyPerWrite() const { return wordWrite_.energy; }
    double searchLatency() const { return bank_.searchDelay; }
    double writeLatency() const { return wordWrite_.latency; }

private:
    void checkRow(int row) const;

    array::ArrayConfig config_;
    std::vector<std::optional<tcam::TernaryWord>> entries_;
    std::size_t occupied_ = 0;
    array::BankMetrics bank_;
    tcam::WordWriteResult wordWrite_;
    MacroStats stats_;
};

}  // namespace fetcam::core
