#include "core/tuner.hpp"

#include <cmath>
#include <limits>
#include <map>

#include "numeric/optimize.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::core {

VddTuneResult tuneVddForMinEdp(const device::TechCard& tech300,
                               const array::ArrayConfig& cfg, double vLo, double vHi,
                               const array::WorkloadProfile& workload) {
    obs::SpanGuard span("core.tuner.vdd", {{"vLo", vLo}, {"vHi", vHi}});

    // Cache metrics per probed voltage: golden-section re-probes endpoints.
    std::map<double, array::ArrayMetrics> cache;
    auto metricsAt = [&](double vdd) -> const array::ArrayMetrics& {
        const double key = std::round(vdd * 1e4) / 1e4;
        if (auto it = cache.find(key); it != cache.end()) return it->second;
        device::TechCard t = tech300;
        t.vdd = key;
        array::ArrayMetrics eval;
        try {
            eval = evaluateArray(t, cfg, workload);
        } catch (const recover::SimError& e) {
            // A voltage the solver cannot handle is just a terrible design
            // point: leave the metrics non-functional so the objective
            // steers away instead of killing the whole optimization.
            if (e.reason() == recover::SimErrorReason::InvalidSpec) throw;
            eval = array::ArrayMetrics{};
            eval.functional = false;
            if (obs::enabled()) {
                static obs::Counter& failed = obs::counter("core.tuner.failed_evals");
                failed.add();
                obs::TraceSink::global().event(
                    "tuner.eval_failed",
                    {{"vdd", key}, {"reason", recover::reasonName(e.reason())}});
            }
        }
        const auto& m = cache.emplace(key, std::move(eval)).first->second;
        if (obs::enabled()) {
            static obs::Counter& evals = obs::counter("core.tuner.evals");
            evals.add();
            obs::TraceSink::global().event(
                "tuner.eval", {{"vdd", key},
                               {"edp", m.perSearch.total() * m.searchDelay},
                               {"functional", m.functional}});
        }
        return m;
    };

    const auto objective = [&](double vdd) {
        const auto& m = metricsAt(vdd);
        const double edp = m.perSearch.total() * m.searchDelay;
        // Penalize broken designs hard but smoothly enough to steer away.
        // Failed simulations have zero metrics; a flat huge penalty keeps
        // the minimizer from mistaking them for the optimum.
        if (!m.functional) return edp > 0.0 ? edp * 1e3 : 1e30;
        return edp;
    };
    const auto r = numeric::minimizeGolden(objective, vLo, vHi, /*xTol=*/0.025);

    VddTuneResult out;
    out.vdd = std::round(r.x * 1e4) / 1e4;
    out.metrics = metricsAt(out.vdd);
    out.edp = out.metrics.perSearch.total() * out.metrics.searchDelay;
    out.evaluations = r.evaluations;
    return out;
}

SegmentTuneResult tuneSegments(const device::TechCard& tech, array::ArrayConfig cfg,
                               double maxDelay, const array::WorkloadProfile& workload,
                               int jobs) {
    obs::SpanGuard span("core.tuner.segments", {{"wordBits", cfg.wordBits}});

    std::vector<int> candidates;
    for (const int k : {1, 2, 4, 8})
        if (k <= cfg.wordBits) candidates.push_back(k);

    struct Eval {
        bool ok = false;
        const char* failReason = nullptr;
        array::ArrayMetrics m;
    };
    std::vector<Eval> evals(candidates.size());
    // The candidates are independent sims; evaluate them in parallel and run
    // the selection scan sequentially below so the winner (and tie-breaks)
    // match the serial loop exactly.
    numeric::parallelFor(jobs, static_cast<int>(candidates.size()), [&](int i) {
        array::ArrayConfig c = cfg;
        c.mlSegments = candidates[static_cast<std::size_t>(i)];
        auto& e = evals[static_cast<std::size_t>(i)];
        try {
            e.m = evaluateArray(tech, c, workload);
            e.ok = true;
        } catch (const recover::SimError& err) {
            if (err.reason() == recover::SimErrorReason::InvalidSpec) throw;
            e.failReason = recover::reasonName(err.reason());
        }
    });

    SegmentTuneResult best;
    bool first = true;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const int k = candidates[i];
        const Eval& e = evals[i];
        if (!e.ok) {
            if (obs::enabled()) {
                static obs::Counter& failed = obs::counter("core.tuner.failed_evals");
                failed.add();
                obs::TraceSink::global().event("tuner.segment_eval_failed",
                                               {{"segments", k}, {"reason", e.failReason}});
            }
            continue;  // skip the unsolvable segmentation, keep scanning
        }
        obs::TraceSink::global().event("tuner.segment_eval",
                                       {{"segments", k},
                                        {"energy", e.m.perSearch.total()},
                                        {"functional", e.m.functional}});
        if (!e.m.functional) continue;
        if (maxDelay > 0.0 && e.m.searchDelay > maxDelay) continue;
        const double energy = e.m.perSearch.total();
        if (first || energy < best.energy) {
            best = {k, energy, e.m};
            first = false;
        }
    }
    return best;
}

}  // namespace fetcam::core
