#include "core/tuner.hpp"

#include <cmath>
#include <map>

#include "numeric/optimize.hpp"
#include "obs/obs.hpp"

namespace fetcam::core {

VddTuneResult tuneVddForMinEdp(const device::TechCard& tech300,
                               const array::ArrayConfig& cfg, double vLo, double vHi,
                               const array::WorkloadProfile& workload) {
    obs::SpanGuard span("core.tuner.vdd", {{"vLo", vLo}, {"vHi", vHi}});

    // Cache metrics per probed voltage: golden-section re-probes endpoints.
    std::map<double, array::ArrayMetrics> cache;
    auto metricsAt = [&](double vdd) -> const array::ArrayMetrics& {
        const double key = std::round(vdd * 1e4) / 1e4;
        if (auto it = cache.find(key); it != cache.end()) return it->second;
        device::TechCard t = tech300;
        t.vdd = key;
        const auto& m = cache.emplace(key, evaluateArray(t, cfg, workload)).first->second;
        if (obs::enabled()) {
            static obs::Counter& evals = obs::counter("core.tuner.evals");
            evals.add();
            obs::TraceSink::global().event(
                "tuner.eval", {{"vdd", key},
                               {"edp", m.perSearch.total() * m.searchDelay},
                               {"functional", m.functional}});
        }
        return m;
    };

    const auto objective = [&](double vdd) {
        const auto& m = metricsAt(vdd);
        const double edp = m.perSearch.total() * m.searchDelay;
        // Penalize broken designs hard but smoothly enough to steer away.
        return m.functional ? edp : edp * 1e3;
    };
    const auto r = numeric::minimizeGolden(objective, vLo, vHi, /*xTol=*/0.025);

    VddTuneResult out;
    out.vdd = std::round(r.x * 1e4) / 1e4;
    out.metrics = metricsAt(out.vdd);
    out.edp = out.metrics.perSearch.total() * out.metrics.searchDelay;
    out.evaluations = r.evaluations;
    return out;
}

SegmentTuneResult tuneSegments(const device::TechCard& tech, array::ArrayConfig cfg,
                               double maxDelay, const array::WorkloadProfile& workload) {
    obs::SpanGuard span("core.tuner.segments", {{"wordBits", cfg.wordBits}});
    SegmentTuneResult best;
    bool first = true;
    for (const int k : {1, 2, 4, 8}) {
        if (k > cfg.wordBits) break;
        cfg.mlSegments = k;
        const auto m = evaluateArray(tech, cfg, workload);
        obs::TraceSink::global().event("tuner.segment_eval",
                                       {{"segments", k},
                                        {"energy", m.perSearch.total()},
                                        {"functional", m.functional}});
        if (!m.functional) continue;
        if (maxDelay > 0.0 && m.searchDelay > maxDelay) continue;
        const double e = m.perSearch.total();
        if (first || e < best.energy) {
            best = {k, e, m};
            first = false;
        }
    }
    return best;
}

}  // namespace fetcam::core
