#include "core/tuner.hpp"

#include <cmath>
#include <limits>
#include <map>

#include "numeric/optimize.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::core {

VddTuneResult tuneVddForMinEdp(const device::TechCard& tech300,
                               const array::ArrayConfig& cfg, double vLo, double vHi,
                               const array::WorkloadProfile& workload) {
    obs::SpanGuard span("core.tuner.vdd", {{"vLo", vLo}, {"vHi", vHi}});

    // Cache metrics per probed voltage: golden-section re-probes endpoints.
    std::map<double, array::ArrayMetrics> cache;
    auto metricsAt = [&](double vdd) -> const array::ArrayMetrics& {
        const double key = std::round(vdd * 1e4) / 1e4;
        if (auto it = cache.find(key); it != cache.end()) return it->second;
        device::TechCard t = tech300;
        t.vdd = key;
        array::ArrayMetrics eval;
        try {
            eval = evaluateArray(t, cfg, workload);
        } catch (const recover::SimError& e) {
            // A voltage the solver cannot handle is just a terrible design
            // point: leave the metrics non-functional so the objective
            // steers away instead of killing the whole optimization.
            if (e.reason() == recover::SimErrorReason::InvalidSpec) throw;
            eval = array::ArrayMetrics{};
            eval.functional = false;
            if (obs::enabled()) {
                static obs::Counter& failed = obs::counter("core.tuner.failed_evals");
                failed.add();
                obs::TraceSink::global().event(
                    "tuner.eval_failed",
                    {{"vdd", key}, {"reason", recover::reasonName(e.reason())}});
            }
        }
        const auto& m = cache.emplace(key, std::move(eval)).first->second;
        if (obs::enabled()) {
            static obs::Counter& evals = obs::counter("core.tuner.evals");
            evals.add();
            obs::TraceSink::global().event(
                "tuner.eval", {{"vdd", key},
                               {"edp", m.perSearch.total() * m.searchDelay},
                               {"functional", m.functional}});
        }
        return m;
    };

    const auto objective = [&](double vdd) {
        const auto& m = metricsAt(vdd);
        const double edp = m.perSearch.total() * m.searchDelay;
        // Penalize broken designs hard but smoothly enough to steer away.
        // Failed simulations have zero metrics; a flat huge penalty keeps
        // the minimizer from mistaking them for the optimum.
        if (!m.functional) return edp > 0.0 ? edp * 1e3 : 1e30;
        return edp;
    };
    const auto r = numeric::minimizeGolden(objective, vLo, vHi, /*xTol=*/0.025);

    VddTuneResult out;
    out.vdd = std::round(r.x * 1e4) / 1e4;
    out.metrics = metricsAt(out.vdd);
    out.edp = out.metrics.perSearch.total() * out.metrics.searchDelay;
    out.evaluations = r.evaluations;
    return out;
}

SegmentTuneResult tuneSegments(const device::TechCard& tech, array::ArrayConfig cfg,
                               double maxDelay, const array::WorkloadProfile& workload) {
    obs::SpanGuard span("core.tuner.segments", {{"wordBits", cfg.wordBits}});
    SegmentTuneResult best;
    bool first = true;
    for (const int k : {1, 2, 4, 8}) {
        if (k > cfg.wordBits) break;
        cfg.mlSegments = k;
        array::ArrayMetrics m;
        try {
            m = evaluateArray(tech, cfg, workload);
        } catch (const recover::SimError& e) {
            if (e.reason() == recover::SimErrorReason::InvalidSpec) throw;
            if (obs::enabled()) {
                static obs::Counter& failed = obs::counter("core.tuner.failed_evals");
                failed.add();
                obs::TraceSink::global().event(
                    "tuner.segment_eval_failed",
                    {{"segments", k}, {"reason", recover::reasonName(e.reason())}});
            }
            continue;  // skip the unsolvable segmentation, keep scanning
        }
        obs::TraceSink::global().event("tuner.segment_eval",
                                       {{"segments", k},
                                        {"energy", m.perSearch.total()},
                                        {"functional", m.functional}});
        if (!m.functional) continue;
        if (maxDelay > 0.0 && m.searchDelay > maxDelay) continue;
        const double e = m.perSearch.total();
        if (first || e < best.energy) {
            best = {k, e, m};
            first = false;
        }
    }
    return best;
}

}  // namespace fetcam::core
