// Auto-tuner: searches single design knobs against circuit-simulated
// objectives (the "energy-aware" closing loop — instead of hand-picking
// VDD or a segment count, let the simulator find it).
#pragma once

#include "array/energy_model.hpp"

namespace fetcam::core {

struct VddTuneResult {
    double vdd = 0.0;
    double edp = 0.0;            ///< J*s at the optimum
    array::ArrayMetrics metrics; ///< full metrics at the optimum
    int evaluations = 0;
};

/// Find the supply voltage minimizing energy-delay product over [vLo, vHi].
/// Non-functional points (sense failure at low VDD) are penalized so the
/// optimum is always a working design. Each evaluation runs circuit sims,
/// so the tolerance is deliberately coarse (25 mV).
VddTuneResult tuneVddForMinEdp(const device::TechCard& tech300, const array::ArrayConfig& cfg,
                               double vLo = 0.7, double vHi = 1.2,
                               const array::WorkloadProfile& workload = {});

struct SegmentTuneResult {
    int segments = 1;
    double energy = 0.0;         ///< J/search at the optimum
    array::ArrayMetrics metrics;
};

/// Pick the matchline segment count (from {1,2,4,8}) minimizing search
/// energy subject to a latency budget (0 = unconstrained). The candidate
/// evaluations run across `jobs` worker threads (0 = process default);
/// selection is identical for any jobs value. (The VDD tuner above stays
/// sequential: golden-section probes depend on previous results.)
SegmentTuneResult tuneSegments(const device::TechCard& tech, array::ArrayConfig cfg,
                               double maxDelay = 0.0,
                               const array::WorkloadProfile& workload = {}, int jobs = 0);

}  // namespace fetcam::core
