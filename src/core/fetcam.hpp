// fetcam — umbrella header for the FeFET TCAM reproduction library.
//
// Layers (bottom-up):
//   numeric : linear algebra, interpolation, statistics, RNG
//   spice   : MNA nonlinear transient circuit engine
//   device  : MOSFET / ferroelectric / FeFET / ReRAM compact models
//   tcam    : ternary types, cell designs, netlist builders, write paths
//   array   : word-level simulation, array energy model, Monte Carlo
//   apps    : LPM routing, packet classification, associative search
//   core    : design-space exploration and reporting
#pragma once

#include "apps/classifier.hpp"
#include "apps/hamming.hpp"
#include "apps/lpm.hpp"
#include "apps/workloads.hpp"
#include "apps/dictionary.hpp"
#include "apps/tlb.hpp"
#include "array/bank.hpp"
#include "array/config.hpp"
#include "array/energy_model.hpp"
#include "array/montecarlo.hpp"
#include "array/word_sim.hpp"
#include "core/design_space.hpp"
#include "core/report.hpp"
#include "core/tcam_macro.hpp"
#include "core/tuner.hpp"
#include "device/netlist.hpp"
#include "device/fefet.hpp"
#include "device/ferro.hpp"
#include "device/mosfet.hpp"
#include "device/passives.hpp"
#include "device/reram.hpp"
#include "device/sources.hpp"
#include "device/tech.hpp"
#include "spice/circuit.hpp"
#include "spice/ac.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"
#include "tcam/cell.hpp"
#include "tcam/cell_builder.hpp"
#include "tcam/ternary.hpp"
#include "tcam/write.hpp"
#include "tcam/write_schedule.hpp"
