#include "core/design_space.hpp"

#include <fstream>

#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::core {

std::vector<DesignPoint> standardDesigns(int wordBits, int rows) {
    using array::SenseScheme;
    using tcam::CellKind;

    auto base = [&](CellKind cell) {
        array::ArrayConfig c;
        c.cell = cell;
        c.wordBits = wordBits;
        c.rows = rows;
        return c;
    };

    std::vector<DesignPoint> designs;
    designs.push_back({"CMOS-16T", base(CellKind::Cmos16T)});
    designs.push_back({"ReRAM-2T2R", base(CellKind::ReRam2T2R)});
    designs.push_back({"FeFET-2T", base(CellKind::FeFet2)});

    auto ls = base(CellKind::FeFet2);
    ls.sense = SenseScheme::LowSwing;
    designs.push_back({"EA-FeFET (+LS)", ls});

    auto lsvs = ls;
    lsvs.vSearch = 0.8;
    designs.push_back({"EA-FeFET (+LS+VS)", lsvs});

    auto lsvssp = lsvs;
    lsvssp.selectivePrecharge = true;
    lsvssp.prefilterBits = 2;
    designs.push_back({"EA-FeFET (+LS+VS+SP)", lsvssp});
    return designs;
}

DesignPoint proposedDesign(int wordBits, int rows) {
    auto all = standardDesigns(wordBits, rows);
    return all.back();
}

std::vector<ExplorationResult> exploreDesigns(const device::TechCard& tech,
                                              const std::vector<DesignPoint>& designs,
                                              const array::WorkloadProfile& workload,
                                              int jobs) {
    std::vector<ExplorationResult> out(designs.size());
    std::vector<const char*> failReasons(designs.size(), nullptr);
    // Each worker evaluates into its own slot; an InvalidSpec rethrow is
    // surfaced by parallelFor for the lowest failing design, matching the
    // sequential loop's first-throw behavior.
    numeric::parallelFor(jobs, static_cast<int>(designs.size()), [&](int i) {
        const auto& d = designs[static_cast<std::size_t>(i)];
        try {
            out[static_cast<std::size_t>(i)] = {d, evaluateArray(tech, d.config, workload),
                                                false, {}};
        } catch (const recover::SimError& e) {
            if (e.reason() == recover::SimErrorReason::InvalidSpec) throw;
            failReasons[static_cast<std::size_t>(i)] = recover::reasonName(e.reason());
            out[static_cast<std::size_t>(i)] = {d, array::ArrayMetrics{}, true, e.what()};
        }
    });
    if (obs::enabled()) {
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (!out[i].simFailed) continue;
            static obs::Counter& failed = obs::counter("core.explore.failed_designs");
            failed.add();
            obs::TraceSink::global().event("explore.design_failed",
                                           {{"design", out[i].design.name.c_str()},
                                            {"reason", failReasons[i]}});
        }
    }
    return out;
}

std::vector<DesignPoint> parametricSweep(tcam::CellKind cell, int wordBits, int rows) {
    std::vector<DesignPoint> out;
    for (const auto sense : {array::SenseScheme::FullSwing, array::SenseScheme::LowSwing}) {
        for (const double vSearch : {0.0, 0.8}) {
            for (const int segments : {1, 2, 4}) {
                array::ArrayConfig c;
                c.cell = cell;
                c.wordBits = wordBits;
                c.rows = rows;
                c.sense = sense;
                c.vSearch = vSearch;
                c.mlSegments = segments;
                std::string name = std::string(senseSchemeName(sense));
                name += vSearch > 0.0 ? "/vs0.8" : "/vs1.0";
                name += "/seg" + std::to_string(segments);
                out.push_back({std::move(name), c});
            }
        }
    }
    return out;
}

Table explorationTable(const std::vector<ExplorationResult>& results) {
    Table t({"design", "E_per_search_J", "fJ_per_bit", "delay_s", "cycle_s",
             "throughput_per_s", "area_F2", "margin_V", "functional"});
    for (const auto& r : results) {
        const auto& m = r.metrics;
        t.addRow({r.design.name, numFormat(m.perSearch.total() * 1e15, 4) + "e-15",
                  numFormat(m.energyPerBitFj, 4), numFormat(m.searchDelay * 1e12, 2) + "e-12",
                  numFormat(m.cycleTime * 1e9, 3) + "e-9", numFormat(m.throughput, 0),
                  numFormat(m.areaF2, 0), numFormat(m.senseMarginV, 4),
                  m.functional ? "1" : "0"});
    }
    return t;
}

void exportExplorationCsv(const std::vector<ExplorationResult>& results,
                          const std::string& path) {
    std::ofstream os(path);
    if (!os)
        throw recover::SimError(recover::SimErrorReason::IoError, "exportExplorationCsv",
                                "cannot open '" + path + "'");
    os << explorationTable(results).toCsv();
    if (!os)
        throw recover::SimError(recover::SimErrorReason::IoError, "exportExplorationCsv",
                                "write failed");
}

std::vector<std::size_t> paretoFront(
    const std::vector<ExplorationResult>& points,
    const std::function<double(const array::ArrayMetrics&)>& objectiveX,
    const std::function<double(const array::ArrayMetrics&)>& objectiveY) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double xi = objectiveX(points[i].metrics);
        const double yi = objectiveY(points[i].metrics);
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
            if (i == j) continue;
            const double xj = objectiveX(points[j].metrics);
            const double yj = objectiveY(points[j].metrics);
            dominated = xj <= xi && yj <= yi && (xj < xi || yj < yi);
        }
        if (!dominated) front.push_back(i);
    }
    return front;
}

}  // namespace fetcam::core
