#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace fetcam::core {

std::string engFormat(double value, const std::string& unit, int significant) {
    if (value == 0.0) return "0 " + unit;
    if (!std::isfinite(value)) return value > 0 ? "inf" : "-inf";
    static constexpr struct {
        double scale;
        const char* prefix;
    } kPrefixes[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
        {1e-21, "z"}, {1e-24, "y"},
    };
    const double mag = std::abs(value);
    if (mag < 1e-24) {  // below the smallest SI prefix: scientific notation
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*e %s", significant - 1, value, unit.c_str());
        return buf;
    }
    for (const auto& p : kPrefixes) {
        if (mag >= p.scale || p.scale == 1e-24) {
            const double scaled = value / p.scale;
            const int intDigits =
                std::max(1, static_cast<int>(std::floor(std::log10(std::abs(scaled)))) + 1);
            const int decimals = std::max(0, significant - intDigits);
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.*f %s%s", decimals, scaled, p.prefix,
                          unit.c_str());
            return buf;
        }
    }
    return std::to_string(value) + " " + unit;
}

std::string numFormat(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw std::invalid_argument("Table::addRow: wrong cell count");
    rows_.push_back(std::move(cells));
}

std::string Table::toAligned() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
            os << (c + 1 < cells.size() ? "  " : "");
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (const std::size_t w : width) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::string Table::toMarkdown() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        os << "|";
        for (const auto& c : cells) os << ' ' << c << " |";
        os << '\n';
    };
    emit(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
    os << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
}

Table solverStatsTable(const spice::TransientResult& result) {
    const auto& s = result.stats;
    Table t({"metric", "value"});
    t.addRow({"accepted steps", std::to_string(result.acceptedSteps)});
    t.addRow({"rejected steps", std::to_string(result.rejectedSteps)});
    t.addRow({"newton iterations", std::to_string(result.newtonIterations)});
    t.addRow({"  wasted on rejected steps",
              std::to_string(result.rejectedNewtonIterations)});
    t.addRow({"matrix factorizations", std::to_string(s.factorizations)});
    t.addRow({"  numeric refactorizations", std::to_string(s.refactorizations)});
    if (s.rescueAttempts > 0) {
        t.addRow({"rescued steps", std::to_string(s.rescuedSteps)});
        t.addRow({"  rescue rungs attempted", std::to_string(s.rescueAttempts)});
        t.addRow({"  accepted at elevated gmin", std::to_string(s.degradedGminSteps)});
    }
    t.addRow({"time: stamping + device eval", engFormat(s.stampSeconds, "s")});
    t.addRow({"time: factorization + solve", engFormat(s.factorSeconds, "s")});
    t.addRow({"time: state commit + record", engFormat(s.acceptSeconds, "s")});
    t.addRow({"time: total run", engFormat(s.totalSeconds, "s")});
    if (s.worstStepIterations > 0) {
        t.addRow({"worst step: iterations", std::to_string(s.worstStepIterations)});
        t.addRow({"worst step: sim time", engFormat(s.worstStepTime, "s")});
        t.addRow({"worst step: final delta", engFormat(s.worstStepMaxDelta, "V")});
    }
    const long long total = s.dtHistogram.total();
    for (int i = 0; i < spice::DtHistogram::kBuckets; ++i) {
        const long long n = s.dtHistogram.counts[static_cast<std::size_t>(i)];
        if (n == 0) continue;
        const double lo = spice::DtHistogram::bucketLowerBound(i);
        const std::string label = i == 0 ? "dt < " + engFormat(1e-18, "s")
                                         : "dt >= " + engFormat(lo, "s");
        t.addRow({label, std::to_string(n) + " (" +
                             numFormat(100.0 * static_cast<double>(n) /
                                           static_cast<double>(total),
                                       1) +
                             " %)"});
    }
    return t;
}

std::string runReport(const spice::TransientResult& result) {
    return solverStatsTable(result).toAligned();
}

std::string Table::toCsv() const {
    std::ostringstream os;
    auto cell = [](const std::string& s) {
        if (s.find(',') == std::string::npos) return s;
        return '"' + s + '"';
    };
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << cell(cells[c]) << (c + 1 < cells.size() ? "," : "");
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

}  // namespace fetcam::core
