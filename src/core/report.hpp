// Reporting helpers: engineering-unit formatting and aligned/markdown/CSV
// tables, so every bench prints its table or figure series uniformly, plus
// the uniform solver "run report" built from TransientResult telemetry.
#pragma once

#include <string>
#include <vector>

#include "spice/transient.hpp"

namespace fetcam::core {

/// Format with an engineering (SI) prefix: 1.23e-14 J -> "12.3 fJ".
std::string engFormat(double value, const std::string& unit, int significant = 3);

/// Fixed-precision decimal.
std::string numFormat(double value, int decimals = 2);

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    std::size_t rows() const { return rows_.size(); }

    /// Aligned monospace rendering (what benches print).
    std::string toAligned() const;
    /// GitHub-flavoured markdown.
    std::string toMarkdown() const;
    /// Comma-separated values (quotes cells containing commas).
    std::string toCsv() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Uniform solver-health "run report": step/iteration counts, the wall-time
/// breakdown from SolverStats (zeros unless obs::enabled() during the run),
/// worst-converging step, and the accepted-dt histogram.
Table solverStatsTable(const spice::TransientResult& result);

/// Convenience: solverStatsTable rendered as aligned text.
std::string runReport(const spice::TransientResult& result);

}  // namespace fetcam::core
