// Energy-aware design-space exploration: named design points (baselines and
// proposed energy-aware FeFET variants), full-space sweeps, and Pareto
// extraction.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "array/energy_model.hpp"
#include "core/report.hpp"

namespace fetcam::core {

struct DesignPoint {
    std::string name;
    array::ArrayConfig config;
};

/// The designs every comparison table/figure reports:
///   three baselines (CMOS-16T, ReRAM-2T2R, plain FeFET-2T full-swing) and
///   three cumulative energy-aware FeFET variants:
///     +LS  : low-swing matchline (precharge 0.4 V, clocked ratioed sense)
///     +VS  : reduced searchline swing (0.8 V — viable because of the FeFET's
///            0.15 V low-VT gate-input search)
///     +SP  : selective precharge (2-bit prefilter stage)
std::vector<DesignPoint> standardDesigns(int wordBits, int rows);

/// Proposed (best energy-aware) design alone.
DesignPoint proposedDesign(int wordBits, int rows);

struct ExplorationResult {
    DesignPoint design;
    array::ArrayMetrics metrics;
    /// Lenient-mode degradation: the simulation for this design raised a
    /// SimError; `metrics` are zeros and `functional` is false.
    bool simFailed = false;
    std::string failureSummary;
};

/// Evaluate a list of designs (2 circuit sims per distinct stage width each),
/// across `jobs` worker threads (0 = process default; results are identical
/// and in design order for any jobs value). Solver failures on individual
/// designs are recorded in the corresponding ExplorationResult (simFailed)
/// rather than aborting the whole exploration; invalid-spec errors still
/// throw.
std::vector<ExplorationResult> exploreDesigns(const device::TechCard& tech,
                                              const std::vector<DesignPoint>& designs,
                                              const array::WorkloadProfile& workload = {},
                                              int jobs = 0);

/// Full parametric sweep over (sense scheme x vSearch x segmentation) for a
/// given cell: the ablation grid bench F8/T2 draw from.
std::vector<DesignPoint> parametricSweep(tcam::CellKind cell, int wordBits, int rows);

/// Indices of the Pareto-optimal points when minimizing both objectives.
std::vector<std::size_t> paretoFront(
    const std::vector<ExplorationResult>& points,
    const std::function<double(const array::ArrayMetrics&)>& objectiveX,
    const std::function<double(const array::ArrayMetrics&)>& objectiveY);

/// Render exploration results as a metrics table (shared by benches and the
/// CSV exporter): one row per design with the standard metric columns.
Table explorationTable(const std::vector<ExplorationResult>& results);

/// Dump exploration results to a CSV file for external plotting. Throws
/// recover::SimError(IoError) on I/O failure.
void exportExplorationCsv(const std::vector<ExplorationResult>& results,
                          const std::string& path);

}  // namespace fetcam::core
