#include "core/tcam_macro.hpp"

#include <stdexcept>

#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::core {

TcamMacro::TcamMacro(const device::TechCard& tech, const array::ArrayConfig& subArray,
                     std::size_t capacity, const array::WorkloadProfile& workload,
                     const array::WordSimFn& sim)
    : config_(subArray) {
    if (capacity == 0)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "TcamMacro",
                                "capacity must be > 0");
    if (capacity > kMaxFunctionalCapacity)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "TcamMacro",
                                "capacity exceeds functional storage limit (2^28 words)");
    obs::SpanGuard span("core.macro.build", {{"capacity", static_cast<long long>(capacity)},
                                             {"wordBits", subArray.wordBits}});
    bank_ = evaluateBank(tech, subArray, static_cast<std::int64_t>(capacity), workload, {},
                         recover::FailurePolicy::Strict, sim);
    // Rounding up to whole sub-arrays can inflate the provisioned capacity
    // past the functional ceiling (tiny capacity, huge sub-array rows).
    if (bank_.totalEntries > static_cast<std::int64_t>(kMaxFunctionalCapacity))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "TcamMacro",
                                "provisioned capacity exceeds functional storage limit");
    entries_.resize(static_cast<std::size_t>(bank_.totalEntries));
    const auto perBit = measureWriteEnergy(subArray.cell, tech);
    wordWrite_ = planWordWrite(subArray.cell, perBit, subArray.wordBits);
    obs::TraceSink::global().event("macro.built",
                                   {{"entries", static_cast<long long>(bank_.totalEntries)},
                                    {"wordBits", subArray.wordBits}});
}

void TcamMacro::checkRow(int row) const {
    if (row < 0 || static_cast<std::size_t>(row) >= entries_.size())
        throw std::out_of_range("TcamMacro: row out of range");
}

int TcamMacro::write(const tcam::TernaryWord& word) {
    if (static_cast<int>(word.size()) != config_.wordBits)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "TcamMacro::write",
                                "word width mismatch");
    for (std::size_t r = 0; r < entries_.size(); ++r) {
        if (!entries_[r]) {
            writeAt(static_cast<int>(r), word);
            return static_cast<int>(r);
        }
    }
    throw std::length_error("TcamMacro::write: macro full");
}

void TcamMacro::writeAt(int row, const tcam::TernaryWord& word) {
    checkRow(row);
    if (static_cast<int>(word.size()) != config_.wordBits)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "TcamMacro::writeAt",
                                "word width mismatch");
    auto& slot = entries_[static_cast<std::size_t>(row)];
    if (!slot) ++occupied_;
    slot = word;
    ++stats_.writes;
    stats_.writeEnergy += wordWrite_.energy;
    if (obs::enabled()) {
        static obs::Counter& writes = obs::counter("core.macro.writes");
        writes.add();
    }
}

void TcamMacro::erase(int row) {
    checkRow(row);
    auto& slot = entries_[static_cast<std::size_t>(row)];
    if (slot) {
        slot.reset();
        --occupied_;
        ++stats_.erases;
        // Erasing is a write of the all-X pattern (same pulse budget).
        stats_.writeEnergy += wordWrite_.energy;
    }
}

const std::optional<tcam::TernaryWord>& TcamMacro::entryAt(int row) const {
    checkRow(row);
    return entries_[static_cast<std::size_t>(row)];
}

std::optional<int> TcamMacro::search(const tcam::TernaryWord& key) {
    if (static_cast<int>(key.size()) != config_.wordBits)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "TcamMacro::search",
                                "key width mismatch");
    ++stats_.searches;
    stats_.searchEnergy += bank_.totalPerSearch();
    if (obs::enabled()) {
        static obs::Counter& searches = obs::counter("core.macro.searches");
        searches.add();
    }
    for (std::size_t r = 0; r < entries_.size(); ++r) {
        if (entries_[r] && entries_[r]->matches(key)) {
            ++stats_.hits;
            return static_cast<int>(r);
        }
    }
    return std::nullopt;
}

std::vector<std::optional<int>> TcamMacro::searchMany(
    const std::vector<tcam::TernaryWord>& keys, int jobs) {
    // Validate every key up front so a bad key fails before any accounting,
    // exactly like the first bad search() call in a sequential loop would.
    for (const auto& key : keys)
        if (static_cast<int>(key.size()) != config_.wordBits)
            throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                    "TcamMacro::searchMany", "key width mismatch");

    std::vector<std::optional<int>> results(keys.size());
    // Workers only read entries_ and write their own result slot; all stats
    // and energy accounting happens below, on the calling thread.
    numeric::parallelFor(jobs, static_cast<int>(keys.size()), [&](int i) {
        const auto& key = keys[static_cast<std::size_t>(i)];
        for (std::size_t r = 0; r < entries_.size(); ++r) {
            if (entries_[r] && entries_[r]->matches(key)) {
                results[static_cast<std::size_t>(i)] = static_cast<int>(r);
                break;
            }
        }
    });

    stats_.searches += keys.size();
    stats_.searchEnergy += bank_.totalPerSearch() * static_cast<double>(keys.size());
    for (const auto& hit : results)
        if (hit) ++stats_.hits;
    if (obs::enabled()) {
        static obs::Counter& searches = obs::counter("core.macro.searches");
        searches.add(static_cast<long long>(keys.size()));
    }
    return results;
}

}  // namespace fetcam::core
