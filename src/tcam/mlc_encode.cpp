#include "tcam/mlc_encode.hpp"

#include <cstdlib>

#include "device/mlc.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::tcam {

int mlcCellsPerWord(int wordBits, int bitsPerCell) {
    if (wordBits < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "mlcCellsPerWord",
                                "wordBits must be >= 1");
    if (bitsPerCell < 1 || bitsPerCell > device::kMaxMlcBitsPerCell)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "mlcCellsPerWord",
                                "bitsPerCell must be in [1, 4]");
    return (wordBits + bitsPerCell - 1) / bitsPerCell;
}

std::vector<int> mlcEncode(const TernaryWord& word, int bitsPerCell) {
    const int bits = static_cast<int>(word.size());
    const int cells = mlcCellsPerWord(bits, bitsPerCell);
    std::vector<int> out(static_cast<std::size_t>(cells), 0);
    for (int b = 0; b < bits; ++b) {
        const Trit t = word[static_cast<std::size_t>(b)];
        if (t == Trit::X)
            throw recover::SimError(recover::SimErrorReason::InvalidSpec, "mlcEncode",
                                    "wildcards have no MLC level; store X rows on "
                                    "binary cells");
        if (t == Trit::One)
            out[static_cast<std::size_t>(b / bitsPerCell)] |= 1 << (b % bitsPerCell);
    }
    return out;
}

std::int64_t mlcLevelDistance(const std::vector<int>& a, const std::vector<int>& b) {
    if (a.size() != b.size())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "mlcLevelDistance",
                                "encoded words have different cell counts");
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += std::abs(static_cast<std::int64_t>(a[i]) - static_cast<std::int64_t>(b[i]));
    return sum;
}

}  // namespace fetcam::tcam
