// Word- and array-level write scheduling on top of the measured per-bit
// write costs. Each technology has a different parallelism constraint:
//
//   FeFET-2T:   two word-parallel phases (erase-all gates at -Vw, then
//               program the selected gates at +Vw) — pulse count independent
//               of word width; energy scales with the bits that switch.
//   ReRAM-2T2R: current-limited — the write driver can only SET/RESET a
//               few bits at a time (default 8), so word latency grows with
//               width.
//   CMOS-16T:   whole-word parallel through the bitlines in one ~ns cycle.
#pragma once

#include "tcam/write.hpp"

namespace fetcam::tcam {

struct WriteScheduleParams {
    int reramParallelBits = 8;  ///< write-current budget per driver group
};

struct WordWriteResult {
    double latency = 0.0;   ///< time to update one stored word [s]
    double energy = 0.0;    ///< energy to update one stored word [J]
    int pulsePhases = 0;    ///< sequential pulse groups issued
};

struct ArrayWriteResult {
    WordWriteResult perWord;
    double fullArrayLatency = 0.0;  ///< rows written one word at a time [s]
    double fullArrayEnergy = 0.0;
    double wordsPerSecond = 0.0;    ///< sustained update throughput
};

/// Schedule a word update of `wordBits` using a measured per-bit cost.
WordWriteResult planWordWrite(CellKind kind, const WriteEnergyResult& perBit, int wordBits,
                              const WriteScheduleParams& params = {});

/// Schedule a full-array rewrite (table load). Runs the per-bit measurement
/// internally.
ArrayWriteResult planArrayWrite(CellKind kind, const device::TechCard& tech, int wordBits,
                                int rows, const WriteScheduleParams& params = {});

}  // namespace fetcam::tcam
