#include "tcam/write.hpp"

#include <cmath>
#include <stdexcept>
#include "device/ferro.hpp"

#include "device/fefet.hpp"
#include "device/mosfet.hpp"
#include "device/passives.hpp"
#include "device/reram.hpp"
#include "device/sources.hpp"
#include "spice/transient.hpp"

namespace fetcam::tcam {

namespace {

using namespace fetcam::device;

constexpr double kDriverRes = 500.0;  // write-driver output impedance [ohm]

struct PulseOutcome {
    double endState = 0.0;  ///< FeFET pnorm or ReRAM w after the pulse
    double energy = 0.0;    ///< energy delivered by the write driver [J]
    double duration = 0.0;  ///< simulated time [s]
};

/// One gate pulse on a grounded-source/drain FeFET starting from `p0`.
PulseOutcome feFetPulse(const device::TechCard& tech, double p0, double vPulse,
                        double pulseWidth) {
    spice::Circuit c;
    const auto drv = c.node("drv");
    const auto g = c.node("g");
    const double edge = 1e-9;
    const double t0 = 1e-9;
    c.add<Resistor>("Rdrv", drv, g, kDriverRes);
    auto& vs = c.add<VoltageSource>("Vw", c, drv, spice::kGround,
                                    SourceWave::pulse(0.0, vPulse, t0, edge, edge, pulseWidth));
    auto& fet = c.add<FeFet>("F1", g, spice::kGround, spice::kGround, tech.fefet);
    fet.setPolarization(p0);

    spice::TransientSpec spec;
    spec.tstop = t0 + pulseWidth + 2.0 * edge + 3e-9;
    spec.dtMax = std::min(1e-9, pulseWidth / 20.0);
    runTransient(c, spec);
    return {.endState = fet.pnorm(), .energy = vs.deliveredEnergy(), .duration = spec.tstop};
}

/// One pulse across ReRAM + access transistor starting from filament `w0`.
PulseOutcome reramPulse(const device::TechCard& tech, double w0, double vPulse,
                        double pulseWidth) {
    spice::Circuit c;
    const auto drv = c.node("drv");
    const auto te = c.node("te");
    const auto mid = c.node("mid");
    const auto wl = c.node("wl");
    const double edge = 0.5e-9;
    const double t0 = 1e-9;
    auto& vs = c.add<VoltageSource>("Vw", c, drv, spice::kGround,
                                    SourceWave::pulse(0.0, vPulse, t0, edge, edge, pulseWidth));
    // Boosted wordline keeps the access device on for both polarities.
    auto& vwl = c.add<VoltageSource>(
        "Vwl", c, wl, spice::kGround,
        SourceWave::dc(std::abs(vPulse) + tech.nmos.vt0 + 0.4));
    c.add<Resistor>("Rdrv", drv, te, kDriverRes);
    auto& ram = c.add<Reram>("R1", te, mid, tech.reram, w0);
    c.add<Mosfet>("Macc", wl, mid, spice::kGround, tech.sizedNmos(4.0));

    spice::TransientSpec spec;
    spec.tstop = t0 + pulseWidth + 2.0 * edge + 2e-9;
    spec.dtMax = std::min(0.5e-9, pulseWidth / 20.0);
    runTransient(c, spec);
    return {.endState = ram.state(),
            .energy = vs.deliveredEnergy() + vwl.deliveredEnergy(),
            .duration = spec.tstop};
}

}  // namespace

WriteEnergyResult measureFeFetWrite(const device::TechCard& tech, double vWrite,
                                    double pulseWidth) {
    // Erase (to high-VT) then program (to low-VT): the worst-case sequence a
    // TCAM bit update applies to one FeFET of the pair.
    const auto erase = feFetPulse(tech, +1.0, -vWrite, pulseWidth);
    const bool erased = erase.endState < -0.9;
    const auto program = feFetPulse(tech, erase.endState, +vWrite, pulseWidth);

    WriteEnergyResult r;
    r.pulseWidth = pulseWidth;
    r.writeLatency = erase.duration + program.duration;
    r.phase1Energy = erase.energy;
    r.phase2Energy = program.energy;
    r.energyPerBit = erase.energy + program.energy;
    r.verified = erased && program.endState > 0.9;
    return r;
}

WriteEnergyResult measureReramWrite(const device::TechCard& tech, double vWrite,
                                    double pulseWidth) {
    // RESET (LRS -> HRS) then SET (HRS -> LRS).
    const auto reset = reramPulse(tech, 1.0, -vWrite, pulseWidth);
    const bool resetOk = reset.endState < 0.1;
    const auto set = reramPulse(tech, reset.endState, +vWrite, pulseWidth);

    WriteEnergyResult r;
    r.pulseWidth = pulseWidth;
    r.writeLatency = reset.duration + set.duration;
    r.phase1Energy = reset.energy;
    r.phase2Energy = set.energy;
    r.energyPerBit = reset.energy + set.energy;
    r.verified = resetOk && set.endState > 0.9;
    return r;
}

WriteEnergyResult measureSramWrite(const device::TechCard& tech) {
    // 6T bistable: flip q from 0 to VDD through the access transistors.
    spice::Circuit c;
    const double vdd = tech.vdd;
    const auto nvdd = c.node("vdd");
    const auto q = c.node("q");
    const auto qb = c.node("qb");
    const auto bl = c.node("bl");
    const auto blb = c.node("blb");
    const auto wl = c.node("wl");

    auto& vddSrc = c.add<VoltageSource>("Vdd", c, nvdd, spice::kGround, SourceWave::dc(vdd));
    // Cross-coupled inverters (weak PMOS for writability).
    c.add<Mosfet>("MPq", qb, q, nvdd, tech.sizedPmos(0.7));
    c.add<Mosfet>("MNq", qb, q, spice::kGround, tech.sizedNmos(1.5));
    c.add<Mosfet>("MPqb", q, qb, nvdd, tech.sizedPmos(0.7));
    c.add<Mosfet>("MNqb", q, qb, spice::kGround, tech.sizedNmos(1.5));
    // Access transistors.
    c.add<Mosfet>("MAq", wl, bl, q, tech.sizedNmos(2.0));
    c.add<Mosfet>("MAqb", wl, blb, qb, tech.sizedNmos(2.0));
    // Write drivers.
    auto& vbl = c.add<VoltageSource>("Vbl", c, bl, spice::kGround, SourceWave::dc(vdd));
    auto& vblb = c.add<VoltageSource>("Vblb", c, blb, spice::kGround, SourceWave::dc(0.0));
    auto& vwl = c.add<VoltageSource>("Vwl", c, wl, spice::kGround,
                                     SourceWave::pulse(0.0, vdd, 0.2e-9, 50e-12, 50e-12, 1e-9));

    spice::TransientSpec spec;
    spec.tstop = 2.5e-9;
    spec.dtMax = 10e-12;
    spec.initialConditions = {{q, 0.0}, {qb, vdd}, {bl, vdd}};
    const auto res = runTransient(c, spec);

    WriteEnergyResult r;
    r.pulseWidth = 1e-9;
    r.writeLatency = spec.tstop;
    r.energyPerBit = vddSrc.deliveredEnergy() + vbl.deliveredEnergy() +
                     vblb.deliveredEnergy() + vwl.deliveredEnergy();
    r.verified = res.waveforms.finalNode(q) > 0.9 * vdd &&
                 res.waveforms.finalNode(qb) < 0.1 * vdd;
    return r;
}

double measureWriteDisturb(const device::TechCard& tech, double vDisturb, int pulses,
                           double pulseWidth) {
    if (pulses < 0) throw std::invalid_argument("measureWriteDisturb: negative pulse count");
    device::PreisachBank bank(tech.fefet.ferro);
    bank.reset(-1.0);  // worst case: high-VT state disturbed toward low-VT
    for (int i = 0; i < pulses; ++i) bank.advance(vDisturb, pulseWidth);
    return bank.pnorm();
}

WriteEnergyResult measureWriteEnergy(CellKind kind, const device::TechCard& tech) {
    switch (kind) {
        case CellKind::FeFet2:
        case CellKind::FeFet2Nand:
            // The erase+program sequence on one device is the per-bit cost
            // (the two FeFETs of the pair take one pulse each).
            return measureFeFetWrite(tech, tech.vWriteFe, tech.tWriteFe);
        case CellKind::ReRam2T2R:
            return measureReramWrite(tech, tech.vWriteReram, tech.tWriteReram);
        case CellKind::Cmos16T: {
            // Two bistables (bit + mask) flip in the worst case.
            WriteEnergyResult r = measureSramWrite(tech);
            r.phase1Energy = r.energyPerBit;
            r.phase2Energy = r.energyPerBit;
            r.energyPerBit *= 2.0;
            return r;
        }
    }
    return {};
}

}  // namespace fetcam::tcam
