// Ternary data types: the values a TCAM stores and searches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fetcam::tcam {

/// A ternary digit: 0, 1, or don't-care.
enum class Trit : unsigned char { Zero = 0, One = 1, X = 2 };

/// One trit matches a search key trit unless both are definite and differ.
/// (A stored X matches anything; an X in the key matches every row — the
/// standard TCAM masked-search semantics.)
constexpr bool tritMatches(Trit stored, Trit key) {
    if (stored == Trit::X || key == Trit::X) return true;
    return stored == key;
}

/// Fixed-width ternary word.
class TernaryWord {
public:
    TernaryWord() = default;
    explicit TernaryWord(std::size_t bits, Trit fill = Trit::X) : trits_(bits, fill) {}

    /// Parse from a string of '0', '1', 'x'/'X'/'*'. Throws on other chars.
    static TernaryWord fromString(const std::string& s);

    /// All-definite word from the low `bits` of an integer (MSB first).
    static TernaryWord fromBits(unsigned long long value, std::size_t bits);

    std::string toString() const;

    std::size_t size() const { return trits_.size(); }
    bool empty() const { return trits_.empty(); }
    Trit& operator[](std::size_t i) { return trits_[i]; }
    Trit operator[](std::size_t i) const { return trits_[i]; }

    bool operator==(const TernaryWord&) const = default;

    /// Word-level match: every trit position matches. Throws on width
    /// mismatch — use the unchecked variant inside validated batch loops.
    bool matches(const TernaryWord& key) const;

    /// Number of definite-and-differing positions (drives ML discharge rate).
    /// Throws on width mismatch.
    std::size_t mismatchCount(const TernaryWord& key) const;

    /// matches() without the per-call width check: callers that validated
    /// the key width once per batch (QueryEngine, the match backends) call
    /// this inside the scan loop. Precondition: key.size() == size().
    bool matchesUnchecked(const TernaryWord& key) const noexcept;

    /// mismatchCount() without the per-call width check. Precondition:
    /// key.size() == size().
    std::size_t mismatchCountUnchecked(const TernaryWord& key) const noexcept;

    /// Number of don't-care positions.
    std::size_t wildcardCount() const;

    /// Number of definite (0/1) positions — the prefix length for LPM rules.
    std::size_t definiteCount() const { return size() - wildcardCount(); }

private:
    std::vector<Trit> trits_;
};

}  // namespace fetcam::tcam
