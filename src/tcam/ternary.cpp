#include "tcam/ternary.hpp"

#include <stdexcept>

namespace fetcam::tcam {

TernaryWord TernaryWord::fromString(const std::string& s) {
    TernaryWord w(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        switch (s[i]) {
            case '0': w.trits_[i] = Trit::Zero; break;
            case '1': w.trits_[i] = Trit::One; break;
            case 'x':
            case 'X':
            case '*': w.trits_[i] = Trit::X; break;
            default:
                throw std::invalid_argument("TernaryWord::fromString: bad char '" +
                                            std::string(1, s[i]) + "'");
        }
    }
    return w;
}

TernaryWord TernaryWord::fromBits(unsigned long long value, std::size_t bits) {
    TernaryWord w(bits);
    for (std::size_t i = 0; i < bits; ++i) {
        const bool bit = (value >> (bits - 1 - i)) & 1ULL;
        w.trits_[i] = bit ? Trit::One : Trit::Zero;
    }
    return w;
}

std::string TernaryWord::toString() const {
    std::string s(trits_.size(), '?');
    for (std::size_t i = 0; i < trits_.size(); ++i) {
        switch (trits_[i]) {
            case Trit::Zero: s[i] = '0'; break;
            case Trit::One: s[i] = '1'; break;
            case Trit::X: s[i] = 'X'; break;
        }
    }
    return s;
}

bool TernaryWord::matches(const TernaryWord& key) const {
    if (key.size() != size())
        throw std::invalid_argument("TernaryWord::matches: width mismatch");
    return matchesUnchecked(key);
}

std::size_t TernaryWord::mismatchCount(const TernaryWord& key) const {
    if (key.size() != size())
        throw std::invalid_argument("TernaryWord::mismatchCount: width mismatch");
    return mismatchCountUnchecked(key);
}

bool TernaryWord::matchesUnchecked(const TernaryWord& key) const noexcept {
    for (std::size_t i = 0; i < trits_.size(); ++i)
        if (!tritMatches(trits_[i], key.trits_[i])) return false;
    return true;
}

std::size_t TernaryWord::mismatchCountUnchecked(const TernaryWord& key) const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < trits_.size(); ++i)
        if (!tritMatches(trits_[i], key.trits_[i])) ++n;
    return n;
}

std::size_t TernaryWord::wildcardCount() const {
    std::size_t n = 0;
    for (const Trit t : trits_)
        if (t == Trit::X) ++n;
    return n;
}

}  // namespace fetcam::tcam
