// MLC word encoding: pack groups of bits into multi-level cells.
//
// A multi-level FeFET cell stores bitsPerCell bits as one of 2^bitsPerCell
// polarization levels (device/mlc.hpp). This module is the functional side
// of that packing: how a definite TernaryWord maps onto per-cell level
// indices, and what aggregate level distance two encoded words have — the
// quantity the matchline discharge rate of a distance-tolerant MLC sense
// is proportional to.
//
// Wildcards are deliberately rejected: an X trit has no level — ternary
// don't-care rows stay on binary (1-bit) cells, which is also what the
// similarity workloads store. The serving-layer distance metric remains
// bitwise Hamming over trits (TernaryWord::mismatchCount — the exact
// functional contract); the MLC encoding exists to price energy/margin and
// to model the analog discharge, not to change match semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "tcam/ternary.hpp"

namespace fetcam::tcam {

/// Cells needed to hold `wordBits` bits at `bitsPerCell` bits each (the
/// last cell may be partially used). Throws SimError(InvalidSpec) on
/// non-positive arguments.
int mlcCellsPerWord(int wordBits, int bitsPerCell);

/// Per-cell level indices for a fully definite word. Bit j of cell c is
/// word[c * bitsPerCell + j] (LSB-first within the cell). Throws
/// SimError(InvalidSpec) on wildcards or an invalid bitsPerCell.
std::vector<int> mlcEncode(const TernaryWord& word, int bitsPerCell);

/// Aggregate cell-level distance between two encoded words: sum over cells
/// of |levelA - levelB|. Throws SimError(InvalidSpec) on length mismatch.
std::int64_t mlcLevelDistance(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace fetcam::tcam
