// Write-path sequencers: measure the energy to store a bit into each cell
// technology by simulating the actual write waveforms.
//
//   FeFET-2T:   erase pulse (-Vw on the gate) then program pulse (+Vw) —
//               one FeFET of the pair goes low-VT, the other high-VT.
//   ReRAM-2T2R: RESET pulse then SET pulse through the access transistor.
//   CMOS-16T:   flip a 6T SRAM bistable through its access transistors
//               (two SRAM cells per TCAM cell: bit + mask).
#pragma once

#include "device/tech.hpp"
#include "tcam/cell.hpp"

namespace fetcam::tcam {

struct WriteEnergyResult {
    double energyPerBit = 0.0;    ///< [J] total energy to write one TCAM bit
    double phase1Energy = 0.0;    ///< [J] erase / RESET / first SRAM flip
    double phase2Energy = 0.0;    ///< [J] program / SET / second SRAM flip
    double pulseWidth = 0.0;      ///< [s] write pulse width used
    double writeLatency = 0.0;    ///< [s] total sequence duration
    bool verified = false;        ///< end state reached its target
};

/// Simulate and measure the write energy for one bit of the given cell kind.
WriteEnergyResult measureWriteEnergy(CellKind kind, const device::TechCard& tech);

/// FeFET write with explicit pulse parameters (voltage/width sweeps for the
/// write-energy/endurance trade-off study, bench F10).
WriteEnergyResult measureFeFetWrite(const device::TechCard& tech, double vWrite,
                                    double pulseWidth);

/// ReRAM write with explicit pulse parameters.
WriteEnergyResult measureReramWrite(const device::TechCard& tech, double vWrite,
                                    double pulseWidth);

/// 6T SRAM cell flip (one of the two bistables in a 16T TCAM cell).
WriteEnergyResult measureSramWrite(const device::TechCard& tech);

/// Half-select write disturb: unselected FeFET cells in a row/column under
/// write see a fraction of the write voltage on their gates. Returns the
/// stored polarization (starting from -1, the high-VT state) after `pulses`
/// disturb pulses of `vDisturb` x `pulseWidth` — drift toward 0/+1 means the
/// bias scheme corrupts neighbours.
double measureWriteDisturb(const device::TechCard& tech, double vDisturb, int pulses,
                           double pulseWidth);

}  // namespace fetcam::tcam
