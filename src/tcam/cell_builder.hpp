// Netlist builders for TCAM search cells.
//
// Topologies (NOR-type; ML precharged high, mismatch pulls down):
//
//   CMOS-16T    branch A: ML -- Msearch(g=SL)  -- mid -- Mstore(g=QA) -- gnd
//               branch B: ML -- Msearch(g=SLB) -- mid -- Mstore(g=QB) -- gnd
//               QA/QB are static SRAM outputs, modelled as rails (the SRAM
//               bistable is exercised separately by the write sequencer).
//
//   ReRAM-2T2R  branch A: ML -- R_A -- mid -- T(g=SL)  -- gnd
//               branch B: ML -- R_B -- mid -- T(g=SLB) -- gnd
//               enabled branch in LRS, disabled in HRS. Note the HRS branch
//               still leaks (finite rOff): matchline sag on matches is real
//               and is what limits word width for this design.
//
//   FeFET-2T    branch A: FeFET(g=SL,  d=ML, s=gnd), low-VT when enabled
//               branch B: FeFET(g=SLB, d=ML, s=gnd)
//               Gate-input search: the stored state gates conduction with no
//               resistive storage element, so matches draw only junction
//               leakage — the root of the FeFET TCAM energy advantage.
#pragma once

#include <string>
#include <vector>

#include "device/tech.hpp"
#include "spice/circuit.hpp"
#include "tcam/cell.hpp"

namespace fetcam::tcam {

/// External connections of one search cell.
struct CellPorts {
    spice::NodeId ml;        ///< matchline
    spice::NodeId sl;        ///< searchline (asserted on key '1')
    spice::NodeId slb;       ///< complement searchline (asserted on key '0')
    spice::NodeId storeVdd;  ///< static rail for SRAM storage gates (16T only)
};

/// Per-cell Monte Carlo perturbations. `state*` overrides the stored element
/// state when >= -1 (FeFET pnorm in [-1,1]; ReRAM w in [0,1]); the sentinel
/// kNominal leaves the encoding-derived nominal state.
struct CellVariation {
    static constexpr double kNominal = -2.0;
    double vtOffsetA = 0.0;  ///< [V] added to branch-A transistor/FeFET VT
    double vtOffsetB = 0.0;
    double stateA = kNominal;
    double stateB = kNominal;
};

/// Handles to the devices a builder created (for probing in tests/benches).
struct BuiltCell {
    std::vector<spice::Device*> devices;
    /// Internal nodes resistively coupled to the matchline while searchlines
    /// are idle (ReRAM mid-nodes). In steady state these float to the ML
    /// precharge level, so word simulations must initialize them there —
    /// otherwise spurious charge sharing corrupts the first evaluation.
    std::vector<spice::NodeId> mlCoupledNodes;
};

/// Append one NOR-type search cell storing `stored` to the circuit.
/// `kind` must not be a NAND kind (use buildNandSearchCell for chains).
BuiltCell buildSearchCell(spice::Circuit& ckt, const device::TechCard& tech, CellKind kind,
                          Trit stored, const CellPorts& ports, const std::string& prefix,
                          const CellVariation* variation = nullptr);

/// External connections of one NAND-chain cell: two FeFETs in parallel
/// between the chain-in and chain-out nodes (FeFET-NAND topology).
struct NandCellPorts {
    spice::NodeId chainIn;
    spice::NodeId chainOut;
    spice::NodeId sl;
    spice::NodeId slb;
};

BuiltCell buildNandSearchCell(spice::Circuit& ckt, const device::TechCard& tech, Trit stored,
                              const NandCellPorts& ports, const std::string& prefix,
                              const CellVariation* variation = nullptr);

}  // namespace fetcam::tcam
