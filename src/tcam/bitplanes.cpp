#include "tcam/bitplanes.hpp"

#include <bit>
#include <stdexcept>

namespace fetcam::tcam {

KeySlices KeySlices::of(const TernaryWord& key) {
    KeySlices s;
    s.bit.reserve(key.size());
    s.broadcast.reserve(key.size());
    for (std::size_t b = 0; b < key.size(); ++b) {
        const Trit t = key[b];
        if (t == Trit::X) continue;
        s.bit.push_back(static_cast<std::uint16_t>(b));
        s.broadcast.push_back(t == Trit::One ? ~std::uint64_t{0} : 0);
    }
    return s;
}

TernaryPlanes::TernaryPlanes(int bits, std::int64_t rows) : bits_(bits) {
    if (bits < 0 || bits > kMaxBits)
        throw std::invalid_argument("TernaryPlanes: bits out of range");
    ensureRows(rows);
}

void TernaryPlanes::ensureRows(std::int64_t rows) {
    if (rows <= rows_) return;
    const std::int64_t blocks = (rows + 63) >> 6;
    if (blocks > blocks_) {
        value_.resize(static_cast<std::size_t>(blocks) * static_cast<std::size_t>(bits_), 0);
        care_.resize(static_cast<std::size_t>(blocks) * static_cast<std::size_t>(bits_), 0);
        occ_.resize(static_cast<std::size_t>(blocks), 0);
        blocks_ = blocks;
    }
    rows_ = rows;
}

void TernaryPlanes::set(std::int64_t row, const TernaryWord& word) {
    const std::int64_t block = row >> 6;
    const std::uint64_t rowBit = std::uint64_t{1} << (row & 63);
    std::uint64_t* value = value_.data() + planeIndex(block, 0);
    std::uint64_t* care = care_.data() + planeIndex(block, 0);
    for (int b = 0; b < bits_; ++b) {
        const Trit t = word[static_cast<std::size_t>(b)];
        if (t == Trit::One)
            value[b] |= rowBit;
        else
            value[b] &= ~rowBit;
        if (t == Trit::X)
            care[b] &= ~rowBit;
        else
            care[b] |= rowBit;
    }
    occ_[static_cast<std::size_t>(block)] |= rowBit;
}

void TernaryPlanes::clear(std::int64_t row) {
    occ_[static_cast<std::size_t>(row >> 6)] &= ~(std::uint64_t{1} << (row & 63));
}

std::int64_t TernaryPlanes::findFirstMatch(std::int64_t begin, std::int64_t end,
                                           const KeySlices& key) const {
    if (begin < 0) begin = 0;
    if (end > rows_) end = rows_;
    if (begin >= end) return -1;
    const std::int64_t firstBlock = begin >> 6;
    const std::int64_t lastBlock = (end - 1) >> 6;
    const std::size_t nBits = key.bit.size();
    for (std::int64_t w = firstBlock; w <= lastBlock; ++w) {
        std::uint64_t m = occ_[static_cast<std::size_t>(w)];
        if (w == firstBlock) m &= ~std::uint64_t{0} << (begin & 63);
        if (w == lastBlock && (end & 63) != 0)
            m &= ~std::uint64_t{0} >> (64 - (end & 63));
        if (!m) continue;
        const std::uint64_t* value = value_.data() + planeIndex(w, 0);
        const std::uint64_t* care = care_.data() + planeIndex(w, 0);
        for (std::size_t j = 0; j < nBits; ++j) {
            const int b = key.bit[j];
            m &= ~(care[b] & (value[b] ^ key.broadcast[j]));
            if (!m) break;
        }
        if (m) return (w << 6) + std::countr_zero(m);
    }
    return -1;
}

void TernaryPlanes::mismatchCounts(const KeySlices& key, std::size_t* out) const {
    // Vertical counters: cnt[k] holds bit k of each row's running mismatch
    // count. Adding a mismatch mask is a ripple-carry add across the planes;
    // with bits <= 2^14 the count fits in 15 planes.
    constexpr int kMaxCounterPlanes = 15;
    const std::size_t nBits = key.bit.size();
    for (std::int64_t w = 0; w < blocks_; ++w) {
        std::uint64_t cnt[kMaxCounterPlanes] = {};
        int used = 0;
        const std::uint64_t* value = value_.data() + planeIndex(w, 0);
        const std::uint64_t* care = care_.data() + planeIndex(w, 0);
        for (std::size_t j = 0; j < nBits; ++j) {
            const int b = key.bit[j];
            std::uint64_t carry = care[b] & (value[b] ^ key.broadcast[j]);
            for (int k = 0; carry; ++k) {
                const std::uint64_t overflow = cnt[k] & carry;
                cnt[k] ^= carry;
                carry = overflow;
                if (k >= used) used = k + 1;
            }
        }
        const std::uint64_t occ = occ_[static_cast<std::size_t>(w)];
        const std::int64_t base = w << 6;
        const int n = static_cast<int>(std::min<std::int64_t>(64, rows_ - base));
        for (int r = 0; r < n; ++r) {
            if (!((occ >> r) & 1u)) {
                out[base + r] = kNoEntry;
                continue;
            }
            std::size_t d = 0;
            for (int k = 0; k < used; ++k) d |= ((cnt[k] >> r) & 1u) << k;
            out[base + r] = d;
        }
    }
}

}  // namespace fetcam::tcam
