#include "tcam/cell_builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "device/fefet.hpp"
#include "device/mosfet.hpp"
#include "device/reram.hpp"

namespace fetcam::tcam {

namespace {

using device::FeFet;
using device::Mosfet;
using device::Reram;

bool hasStateOverride(double s) { return s >= -1.0; }

/// CMOS 16T: one series pulldown branch.
void buildCmosBranch(spice::Circuit& ckt, const device::TechCard& tech, const CellPorts& ports,
                     spice::NodeId searchGate, bool storeOn, double vtOffset,
                     const std::string& prefix, BuiltCell& out) {
    const auto mid = ckt.internalNode(prefix + "_mid");
    auto search = tech.sizedNmos(2.0);
    search.vt0 += vtOffset;
    auto store = tech.sizedNmos(2.0);
    store.vt0 += vtOffset;
    const spice::NodeId storeGate = storeOn ? ports.storeVdd : spice::kGround;
    out.devices.push_back(
        &ckt.add<Mosfet>(prefix + "_Msearch", searchGate, ports.ml, mid, search));
    out.devices.push_back(
        &ckt.add<Mosfet>(prefix + "_Mstore", storeGate, mid, spice::kGround, store));
}

/// ReRAM 2T2R: resistor-then-access-transistor pulldown branch.
void buildReramBranch(spice::Circuit& ckt, const device::TechCard& tech, const CellPorts& ports,
                      spice::NodeId searchGate, bool enabled, double vtOffset, double stateOvr,
                      const std::string& prefix, BuiltCell& out) {
    const auto mid = ckt.internalNode(prefix + "_mid");
    double w = enabled ? 1.0 : 0.0;
    if (hasStateOverride(stateOvr)) w = std::clamp(stateOvr, 0.0, 1.0);
    auto access = tech.sizedNmos(2.0);
    access.vt0 += vtOffset;
    out.devices.push_back(&ckt.add<Reram>(prefix + "_R", ports.ml, mid, tech.reram, w));
    out.devices.push_back(
        &ckt.add<Mosfet>(prefix + "_Macc", searchGate, mid, spice::kGround, access));
    out.mlCoupledNodes.push_back(mid);
}

/// FeFET: single-device pulldown branch, polarization is the storage.
void buildFeFetBranch(spice::Circuit& ckt, const device::TechCard& tech, const CellPorts& ports,
                      spice::NodeId searchGate, bool enabled, double vtOffset, double stateOvr,
                      const std::string& prefix, BuiltCell& out) {
    auto params = tech.fefet;
    params.mos.vt0 += vtOffset;
    auto& fet = ckt.add<FeFet>(prefix + "_F", searchGate, ports.ml, spice::kGround, params);
    double pnorm = enabled ? 1.0 : -1.0;  // low-VT when the branch is enabled
    if (hasStateOverride(stateOvr)) pnorm = std::clamp(stateOvr, -1.0, 1.0);
    fet.setPolarization(pnorm);
    out.devices.push_back(&fet);
}

}  // namespace

BuiltCell buildNandSearchCell(spice::Circuit& ckt, const device::TechCard& tech, Trit stored,
                              const NandCellPorts& ports, const std::string& prefix,
                              const CellVariation* variation) {
    const BranchEncoding enc = nandEncodeTrit(stored);
    const CellVariation var = variation ? *variation : CellVariation{};
    BuiltCell out;
    auto addFet = [&](spice::NodeId gate, bool enabled, double vtOffset, double stateOvr,
                      const std::string& suffix) {
        auto params = tech.fefet;
        params.mos.vt0 += vtOffset;
        auto& fet = ckt.add<FeFet>(prefix + suffix, gate, ports.chainIn, ports.chainOut,
                                   params);
        double pnorm = enabled ? 1.0 : -1.0;
        if (hasStateOverride(stateOvr)) pnorm = std::clamp(stateOvr, -1.0, 1.0);
        fet.setPolarization(pnorm);
        out.devices.push_back(&fet);
    };
    addFet(ports.sl, enc.aEnabled, var.vtOffsetA, var.stateA, "_a_F");
    addFet(ports.slb, enc.bEnabled, var.vtOffsetB, var.stateB, "_b_F");
    return out;
}

BuiltCell buildSearchCell(spice::Circuit& ckt, const device::TechCard& tech, CellKind kind,
                          Trit stored, const CellPorts& ports, const std::string& prefix,
                          const CellVariation* variation) {
    if (isNandKind(kind))
        throw std::invalid_argument("buildSearchCell: NAND kinds use buildNandSearchCell");
    const BranchEncoding enc = encodeTrit(stored);
    const CellVariation var = variation ? *variation : CellVariation{};
    BuiltCell out;
    switch (kind) {
        case CellKind::Cmos16T:
            buildCmosBranch(ckt, tech, ports, ports.sl, enc.aEnabled, var.vtOffsetA,
                            prefix + "_a", out);
            buildCmosBranch(ckt, tech, ports, ports.slb, enc.bEnabled, var.vtOffsetB,
                            prefix + "_b", out);
            break;
        case CellKind::ReRam2T2R:
            buildReramBranch(ckt, tech, ports, ports.sl, enc.aEnabled, var.vtOffsetA,
                             var.stateA, prefix + "_a", out);
            buildReramBranch(ckt, tech, ports, ports.slb, enc.bEnabled, var.vtOffsetB,
                             var.stateB, prefix + "_b", out);
            break;
        case CellKind::FeFet2:
            buildFeFetBranch(ckt, tech, ports, ports.sl, enc.aEnabled, var.vtOffsetA,
                             var.stateA, prefix + "_a", out);
            buildFeFetBranch(ckt, tech, ports, ports.slb, enc.bEnabled, var.vtOffsetB,
                             var.stateB, prefix + "_b", out);
            break;
        case CellKind::FeFet2Nand:
            break;  // unreachable: rejected above
    }
    return out;
}

}  // namespace fetcam::tcam
