#include "tcam/write_schedule.hpp"

#include <stdexcept>

namespace fetcam::tcam {

WordWriteResult planWordWrite(CellKind kind, const WriteEnergyResult& perBit, int wordBits,
                              const WriteScheduleParams& params) {
    if (wordBits < 1) throw std::invalid_argument("planWordWrite: bad word width");
    WordWriteResult r;
    switch (kind) {
        case CellKind::FeFet2:
        case CellKind::FeFet2Nand:
            // Erase phase (all gates together) + program phase: two pulse
            // groups regardless of width; every bit pays its switch energy.
            r.pulsePhases = 2;
            r.latency = perBit.writeLatency;  // the measured two-phase sequence
            r.energy = perBit.energyPerBit * wordBits;
            break;
        case CellKind::ReRam2T2R: {
            const int par = std::max(1, params.reramParallelBits);
            const int groups = (wordBits + par - 1) / par;
            r.pulsePhases = 2 * groups;  // RESET + SET per group
            r.latency = perBit.writeLatency * groups;
            r.energy = perBit.energyPerBit * wordBits;
            break;
        }
        case CellKind::Cmos16T:
            r.pulsePhases = 1;
            r.latency = perBit.writeLatency;
            r.energy = perBit.energyPerBit * wordBits;
            break;
    }
    return r;
}

ArrayWriteResult planArrayWrite(CellKind kind, const device::TechCard& tech, int wordBits,
                                int rows, const WriteScheduleParams& params) {
    if (rows < 1) throw std::invalid_argument("planArrayWrite: bad row count");
    const auto perBit = measureWriteEnergy(kind, tech);
    ArrayWriteResult r;
    r.perWord = planWordWrite(kind, perBit, wordBits, params);
    r.fullArrayLatency = r.perWord.latency * rows;  // one row decoder, serial rows
    r.fullArrayEnergy = r.perWord.energy * rows;
    r.wordsPerSecond = 1.0 / r.perWord.latency;
    return r;
}

}  // namespace fetcam::tcam
