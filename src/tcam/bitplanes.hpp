// Bit-plane (bit-sliced) storage for ternary match: the software analogue of
// the hardware TCAM's column-parallel search, and of the LUT-RAM match-vector
// decomposition (per key slice, AND a per-entry match vector).
//
// Instead of one TernaryWord per row (a heap vector of trits walked one trit
// at a time), rows pack *vertically*: for every key-bit position b the set
// keeps two 64-bit planes over a block of 64 rows —
//
//   value[b]  bit r set  =>  row r stores One at position b
//   care[b]   bit r set  =>  row r is definite (0/1, not X) at position b
//
// plus one occupancy plane per block (bit r set => row r holds an entry).
// A search then visits only the key's *definite* bits and performs, per
// 64-row block, one AND-NOT per bit:
//
//   match &= ~(care[b] & (value[b] ^ broadcast(key[b])))
//
// which clears exactly the rows that are definite at b and differ from the
// key — stored X rows keep matching (care bit 0), key X bits are skipped
// entirely. 64+ entries advance per machine word per operation, and the
// priority winner inside a block is count-trailing-zeros of the surviving
// vector. mismatchCounts() reuses the same planes with a bit-sliced
// ripple-carry accumulation (XOR+mask per bit, popcount-style vertical
// counters), which is what the Hamming / nearest-neighbour workloads ride.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tcam/ternary.hpp"

namespace fetcam::tcam {

/// A search key decomposed into its definite bit positions with the stored
/// value broadcast across a 64-row word (~0 for One, 0 for Zero). Built once
/// per key per batch; X positions are absent — they constrain nothing.
struct KeySlices {
    std::vector<std::uint16_t> bit;        ///< definite positions, ascending
    std::vector<std::uint64_t> broadcast;  ///< aligned with `bit`
    static KeySlices of(const TernaryWord& key);
};

/// Sentinel mismatch count for unoccupied rows.
inline constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

class TernaryPlanes {
public:
    /// Widest word the plane layout supports (KeySlices packs positions into
    /// 16 bits; realistic TCAM words are <= 512 bits).
    static constexpr int kMaxBits = 1 << 14;

    /// Empty set of `bits`-wide rows; rows grow via ensureRows()/set().
    explicit TernaryPlanes(int bits, std::int64_t rows = 0);

    int bits() const { return bits_; }
    std::int64_t rows() const { return rows_; }

    /// Grow to at least `rows` rows (new rows unoccupied). Never shrinks.
    void ensureRows(std::int64_t rows);

    /// Store `word` at `row` (row < rows(); word.size() == bits() — callers
    /// validate once per batch, this is the unchecked hot path).
    void set(std::int64_t row, const TernaryWord& word);

    /// Mark `row` unoccupied.
    void clear(std::int64_t row);

    bool occupied(std::int64_t row) const {
        return (occ_[static_cast<std::size_t>(row >> 6)] >> (row & 63)) & 1u;
    }

    /// Lowest occupied row in [begin, end) matching `key`, or -1 — the
    /// shard-local priority encoder. begin/end need not be 64-aligned.
    std::int64_t findFirstMatch(std::int64_t begin, std::int64_t end,
                                const KeySlices& key) const;

    /// Per-row mismatch counts (definite-and-differing positions) for all
    /// rows into out[0 .. rows()); unoccupied rows get kNoEntry. Bit-sliced:
    /// every definite key bit contributes one XOR+AND over a 64-row block,
    /// accumulated in vertical ripple-carry counter planes.
    void mismatchCounts(const KeySlices& key, std::size_t* out) const;

private:
    std::size_t planeIndex(std::int64_t block, int bit) const {
        return static_cast<std::size_t>(block) * static_cast<std::size_t>(bits_) +
               static_cast<std::size_t>(bit);
    }

    int bits_;
    std::int64_t rows_ = 0;
    std::int64_t blocks_ = 0;              ///< 64-row blocks allocated
    std::vector<std::uint64_t> value_;     ///< [block * bits_ + b]
    std::vector<std::uint64_t> care_;      ///< [block * bits_ + b]
    std::vector<std::uint64_t> occ_;       ///< [block]
};

}  // namespace fetcam::tcam
