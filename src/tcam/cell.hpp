// TCAM cell designs: enumerations, static metadata, storage encodings.
//
// All three cells are NOR-type: matchlines precharge high and a mismatching
// cell pulls its matchline down. The per-design search-path topologies are
// documented in cell_builder.hpp.
#pragma once

#include <string>

#include "device/tech.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::tcam {

enum class CellKind {
    Cmos16T,     ///< SRAM-based 16T NOR cell (4T search path + 2x 6T storage)
    ReRam2T2R,   ///< 2 transistors + 2 bipolar ReRAM
    FeFet2,      ///< 2 FeFETs (Yin-style), gate-input search, no DC storage path
    FeFet2Nand,  ///< 2 FeFETs per cell in a series (NAND) chain: the matchline
                 ///< discharges only when EVERY cell conducts, i.e. on a full
                 ///< match. Denser and cheaper per search (one discharging ML
                 ///< per array instead of rows-1), but the series chain limits
                 ///< word length and slows detection.
};

constexpr const char* cellKindName(CellKind k) {
    switch (k) {
        case CellKind::Cmos16T: return "CMOS-16T";
        case CellKind::ReRam2T2R: return "ReRAM-2T2R";
        case CellKind::FeFet2: return "FeFET-2T";
        case CellKind::FeFet2Nand: return "FeFET-NAND";
    }
    return "?";
}

/// NAND organizations invert the matchline polarity: discharge signals MATCH.
constexpr bool isNandKind(CellKind k) { return k == CellKind::FeFet2Nand; }

/// Devices in the cell (transistor-equivalent count; resistive elements
/// counted separately).
struct CellDeviceCount {
    int transistors = 0;
    int fefets = 0;
    int rerams = 0;
};

CellDeviceCount cellDeviceCount(CellKind k);

/// Layout footprint proxy in F^2 (from published cell layouts, via the tech card).
double cellAreaF2(CellKind k, const device::TechCard& tech);

/// Per-branch storage encoding of a trit. Each NOR cell has two pulldown
/// branches: branch A gated by SL, branch B gated by SLB. `aEnabled` means
/// branch A's storage element is conductive (LRS / low-VT / storage NMOS on).
struct BranchEncoding {
    bool aEnabled = false;
    bool bEnabled = false;
};

/// NOR-cell encoding: stored '1' enables the SLB branch (discharge on key 0),
/// stored '0' enables the SL branch, X enables neither.
BranchEncoding encodeTrit(Trit stored);

/// Searchline levels for a key trit: SL asserted on key '1', SLB on key '0',
/// neither on key X (masked search bit).
struct SearchDrive {
    bool sl = false;
    bool slb = false;
};

SearchDrive searchDrive(Trit key);

/// NAND-chain encoding: a cell must CONDUCT iff its bit matches, so the
/// branch gated by the *matching* searchline is enabled (low-VT) and the
/// opposing one blocks; stored X enables both.
BranchEncoding nandEncodeTrit(Trit stored);

/// NAND search drive: key '1' asserts SL, key '0' asserts SLB, key X asserts
/// BOTH (a masked bit must conduct through every stored value).
SearchDrive nandSearchDrive(Trit key);

}  // namespace fetcam::tcam
