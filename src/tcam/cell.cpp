#include "tcam/cell.hpp"

namespace fetcam::tcam {

CellDeviceCount cellDeviceCount(CellKind k) {
    switch (k) {
        case CellKind::Cmos16T: return {.transistors = 16, .fefets = 0, .rerams = 0};
        case CellKind::ReRam2T2R: return {.transistors = 2, .fefets = 0, .rerams = 2};
        case CellKind::FeFet2: return {.transistors = 0, .fefets = 2, .rerams = 0};
        case CellKind::FeFet2Nand: return {.transistors = 0, .fefets = 2, .rerams = 0};
    }
    return {};
}

double cellAreaF2(CellKind k, const device::TechCard& tech) {
    switch (k) {
        case CellKind::Cmos16T: return tech.areaCell16T;
        case CellKind::ReRam2T2R: return tech.areaCell2T2R;
        case CellKind::FeFet2: return tech.areaCell2FeFet;
        case CellKind::FeFet2Nand: return tech.areaCell2FeFetNand;
    }
    return 0.0;
}

BranchEncoding encodeTrit(Trit stored) {
    switch (stored) {
        case Trit::One: return {.aEnabled = false, .bEnabled = true};
        case Trit::Zero: return {.aEnabled = true, .bEnabled = false};
        case Trit::X: return {.aEnabled = false, .bEnabled = false};
    }
    return {};
}

SearchDrive searchDrive(Trit key) {
    switch (key) {
        case Trit::One: return {.sl = true, .slb = false};
        case Trit::Zero: return {.sl = false, .slb = true};
        case Trit::X: return {.sl = false, .slb = false};
    }
    return {};
}

BranchEncoding nandEncodeTrit(Trit stored) {
    switch (stored) {
        case Trit::One: return {.aEnabled = true, .bEnabled = false};
        case Trit::Zero: return {.aEnabled = false, .bEnabled = true};
        case Trit::X: return {.aEnabled = true, .bEnabled = true};
    }
    return {};
}

SearchDrive nandSearchDrive(Trit key) {
    switch (key) {
        case Trit::One: return {.sl = true, .slb = false};
        case Trit::Zero: return {.sl = false, .slb = true};
        case Trit::X: return {.sl = true, .slb = true};
    }
    return {};
}

}  // namespace fetcam::tcam
