#include "numeric/complex_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace fetcam::numeric {

std::vector<Complex> ComplexDenseMatrix::multiply(const std::vector<Complex>& x) const {
    if (x.size() != cols_) throw std::invalid_argument("ComplexDenseMatrix::multiply: size");
    std::vector<Complex> y(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        Complex acc{};
        for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
        y[r] = acc;
    }
    return y;
}

std::vector<Complex> solveComplexDense(ComplexDenseMatrix a, std::vector<Complex> b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        throw std::invalid_argument("solveComplexDense: shape mismatch");

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting on magnitude.
        std::size_t pivot = k;
        double best = std::abs(a(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            if (std::abs(a(r, k)) > best) {
                best = std::abs(a(r, k));
                pivot = r;
            }
        }
        if (best == 0.0) throw std::runtime_error("solveComplexDense: singular matrix");
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(pivot, c));
            std::swap(b[k], b[pivot]);
        }
        for (std::size_t r = k + 1; r < n; ++r) {
            const Complex factor = a(r, k) / a(k, k);
            if (factor == Complex{}) continue;
            for (std::size_t c = k + 1; c < n; ++c) a(r, c) -= factor * a(k, c);
            b[r] -= factor * b[k];
        }
    }
    std::vector<Complex> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        Complex acc = b[ii];
        for (std::size_t c = ii + 1; c < n; ++c) acc -= a(ii, c) * x[c];
        x[ii] = acc / a(ii, ii);
    }
    return x;
}

}  // namespace fetcam::numeric
