// Streaming statistics and random sampling used by the Monte Carlo
// variation engine and workload generators.
#pragma once

#include <cstdint>
#include <vector>

namespace fetcam::numeric {

/// Welford-style running mean/variance accumulator.
class RunningStats {
public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    double variance() const;  ///< sample variance (n-1); 0 if n < 2
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// p in [0, 100]. Throws on empty input.
double percentile(std::vector<double> values, double p);

/// Deterministic, seedable RNG (xoshiro256**). Self-contained so results are
/// reproducible across platforms and standard-library versions.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    std::uint64_t nextU64();
    double uniform();                       ///< [0, 1)
    double uniform(double lo, double hi);   ///< [lo, hi)
    double normal(double mean, double sigma);
    int uniformInt(int lo, int hi);         ///< inclusive range [lo, hi]
    bool bernoulli(double p);

    /// Split off an independent stream (for per-trial reproducibility).
    /// Order-dependent: the k-th split depends on every draw before it. For
    /// sweeps that must be schedule-independent, use forStream instead.
    Rng split();

    /// Counter-based split: an independent stream identified by (seed,
    /// stream) alone — stream k is the same no matter how many streams were
    /// created before it or in what order. This is what keeps parallel Monte
    /// Carlo bit-identical to the serial run.
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

}  // namespace fetcam::numeric
