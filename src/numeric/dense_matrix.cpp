#include "numeric/dense_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fetcam::numeric {

DenseMatrix DenseMatrix::identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

void DenseMatrix::setZero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
    if (x.size() != cols_) throw std::invalid_argument("DenseMatrix::multiply: size mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
        y[r] = acc;
    }
    return y;
}

DenseMatrix DenseMatrix::transpose() const {
    DenseMatrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

double DenseMatrix::norm() const {
    double acc = 0.0;
    for (double v : data_) acc += v * v;
    return std::sqrt(acc);
}

DenseLu::DenseLu(const DenseMatrix& a) : n_(a.rows()), lu_(a), perm_(a.rows()) {
    if (a.rows() != a.cols()) throw std::invalid_argument("DenseLu: matrix must be square");
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n_; ++k) {
        // Partial pivoting: find largest |entry| in column k at/below diagonal.
        std::size_t pivot = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t r = k + 1; r < n_; ++r) {
            const double v = std::abs(lu_(r, k));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best == 0.0) throw std::runtime_error("DenseLu: singular matrix");
        if (pivot != k) {
            for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(pivot, c));
            std::swap(perm_[k], perm_[pivot]);
            permSign_ = -permSign_;
        }
        const double diag = lu_(k, k);
        for (std::size_t r = k + 1; r < n_; ++r) {
            const double factor = lu_(r, k) / diag;
            lu_(r, k) = factor;
            if (factor == 0.0) continue;
            for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= factor * lu_(k, c);
        }
    }
}

std::vector<double> DenseLu::solve(const std::vector<double>& b) const {
    if (b.size() != n_) throw std::invalid_argument("DenseLu::solve: size mismatch");
    std::vector<double> x(n_);
    // Apply permutation, then forward substitution (L has unit diagonal).
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
    for (std::size_t i = 0; i < n_; ++i) {
        double acc = x[i];
        for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
        x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n_; ii-- > 0;) {
        double acc = x[ii];
        for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
        x[ii] = acc / lu_(ii, ii);
    }
    return x;
}

double DenseLu::determinant() const {
    double det = permSign_;
    for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
    return det;
}

std::vector<double> solveDense(const DenseMatrix& a, const std::vector<double>& b) {
    return DenseLu(a).solve(b);
}

}  // namespace fetcam::numeric
