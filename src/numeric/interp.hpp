// Piecewise-linear interpolation helpers.
//
// Used for PWL source waveforms, ReRAM resistance-state interpolation, and
// post-processing of simulated waveforms (threshold-crossing search).
#pragma once

#include <optional>
#include <vector>

namespace fetcam::numeric {

/// A piecewise-linear function y(x) defined by sorted breakpoints.
/// Outside the covered range the first/last y value is held (clamped);
/// x exactly on a knot evaluates to that knot's y. A NaN x yields NaN
/// (and slope 0) rather than undefined behaviour.
class PiecewiseLinear {
public:
    PiecewiseLinear() = default;

    /// Points must be sorted by strictly increasing, finite x; throws
    /// std::invalid_argument otherwise (duplicated or NaN knots rejected).
    PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

    double operator()(double x) const;

    /// Derivative dy/dx at x (constant per segment; 0 outside the range).
    double slope(double x) const;

    bool empty() const { return xs_.empty(); }
    const std::vector<double>& xs() const { return xs_; }
    const std::vector<double>& ys() const { return ys_; }

private:
    /// Index of the segment's upper knot for an interior x, clamped into
    /// [1, size-1] so lookups can never step past either end.
    std::size_t segmentUpper(double x) const;

    std::vector<double> xs_;
    std::vector<double> ys_;
};

/// First x >= from where the sampled series (xs, ys) crosses `level` in the
/// given direction (rising: from below to >= level). Linear interpolation
/// between samples. nullopt if no crossing.
std::optional<double> firstCrossing(const std::vector<double>& xs, const std::vector<double>& ys,
                                    double level, bool rising, double from = 0.0);

/// Trapezoidal integral of the sampled series.
double trapezoid(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace fetcam::numeric
