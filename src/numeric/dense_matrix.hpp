// Dense matrix with LU factorization (partial pivoting).
//
// Used for small linear systems (device-level fitting, small circuits) and
// as the reference implementation the sparse solver is tested against.
#pragma once

#include <cstddef>
#include <vector>

namespace fetcam::numeric {

/// Row-major dense matrix of doubles.
class DenseMatrix {
public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    static DenseMatrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    void setZero();

    /// y = A * x. Requires x.size() == cols().
    std::vector<double> multiply(const std::vector<double>& x) const;

    DenseMatrix transpose() const;

    /// Frobenius norm.
    double norm() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// LU factorization with partial pivoting: P*A = L*U.
///
/// Throws std::runtime_error on (numerically) singular input.
class DenseLu {
public:
    explicit DenseLu(const DenseMatrix& a);

    /// Solve A x = b. Requires b.size() == n.
    std::vector<double> solve(const std::vector<double>& b) const;

    /// Determinant of A (product of U diagonal, sign from pivoting).
    double determinant() const;

    std::size_t size() const { return n_; }

private:
    std::size_t n_ = 0;
    DenseMatrix lu_;                 // packed L (unit diag, below) and U (on/above)
    std::vector<std::size_t> perm_;  // row permutation
    int permSign_ = 1;
};

/// Convenience: solve a dense system in one call.
std::vector<double> solveDense(const DenseMatrix& a, const std::vector<double>& b);

}  // namespace fetcam::numeric
