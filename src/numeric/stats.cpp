#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fetcam::numeric {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
    if (values.empty()) throw std::invalid_argument("percentile: empty sample");
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t splitMix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitMix64(sm);
}

std::uint64_t Rng::nextU64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal(double mean, double sigma) {
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + sigma * spare_;
    }
    // Marsaglia polar method.
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    haveSpare_ = true;
    return mean + sigma * u * factor;
}

int Rng::uniformInt(int lo, int hi) {
    if (hi < lo) throw std::invalid_argument("Rng::uniformInt: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(nextU64() % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(nextU64() ^ 0xa5a5a5a5deadbeefULL); }

Rng Rng::forStream(std::uint64_t seed, std::uint64_t stream) {
    // Two splitMix64 rounds decorrelate adjacent stream indices before the
    // Rng constructor expands the result into xoshiro state.
    std::uint64_t sm = seed ^ (stream * 0x632be59bd9b4e019ULL + 0x9e3779b97f4a7c15ULL);
    const std::uint64_t a = splitMix64(sm);
    return Rng(a ^ splitMix64(sm));
}

}  // namespace fetcam::numeric
