// Scalar minimization: golden-section search over a bracket. Used by the
// core auto-tuner (e.g. minimum-EDP supply voltage).
#pragma once

#include <functional>
#include <vector>

namespace fetcam::numeric {

struct ScalarMinResult {
    double x = 0.0;
    double value = 0.0;
    int evaluations = 0;
};

/// Minimize f over [lo, hi] with golden-section search. The function need
/// not be smooth, but must be unimodal on the bracket for a guaranteed
/// result; otherwise a local minimum is returned. Throws on an empty
/// bracket.
ScalarMinResult minimizeGolden(const std::function<double(double)>& f, double lo, double hi,
                               double xTol = 1e-3, int maxEvaluations = 200);

/// Minimize f over an explicit candidate grid (robust companion for rugged
/// or discrete-ish objectives). Throws on an empty grid.
ScalarMinResult minimizeOnGrid(const std::function<double(double)>& f,
                               const std::vector<double>& candidates);

}  // namespace fetcam::numeric
