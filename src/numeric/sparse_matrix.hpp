// Sparse matrices in compressed-sparse-column form plus a left-looking
// (Gilbert-Peierls) LU factorization with threshold partial pivoting.
//
// This is the workhorse linear solver behind the MNA circuit engine. The
// nonzero pattern of a circuit's Jacobian is fixed across Newton iterations,
// so the engine freezes the CSC pattern after the first assembly (stamping
// values in place from then on — see spice::Mna) and splits the LU into a
// one-time symbolic analysis plus cheap numeric refactorizations that follow
// the cached nonzero pattern and pivot order (KLU-style reuse).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace fetcam::numeric {

/// Coordinate-format accumulator used to assemble a sparse matrix.
/// Duplicate (row, col) entries are summed when compiled to CSC.
class TripletList {
public:
    TripletList(int rows, int cols) : rows_(rows), cols_(cols) {}

    void add(int row, int col, double value) { entries_.push_back({row, col, value}); }
    void clear() { entries_.clear(); }

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    struct Entry {
        int row;
        int col;
        double value;
    };
    const std::vector<Entry>& entries() const { return entries_; }

    /// Remove every entry matching `pred(entry)`. Used by fault injection to
    /// carve structurally singular rows/columns out of an assembled matrix.
    template <typename Pred>
    void eraseIf(Pred pred) {
        entries_.erase(std::remove_if(entries_.begin(), entries_.end(), pred), entries_.end());
    }

private:
    int rows_;
    int cols_;
    std::vector<Entry> entries_;
};

/// Compressed-sparse-column matrix.
class SparseMatrixCsc {
public:
    SparseMatrixCsc() = default;

    /// Compile a triplet list, summing duplicates. When `slotOfEntry` is
    /// non-null it receives, for each triplet entry (in insertion order), the
    /// index into values() that entry was accumulated into — the "stamp map"
    /// that lets an assembler replay the same stamp sequence straight into
    /// values() without re-sorting.
    static SparseMatrixCsc fromTriplets(const TripletList& t,
                                        std::vector<int>* slotOfEntry = nullptr);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int nonZeros() const { return static_cast<int>(values_.size()); }

    const std::vector<int>& colPtr() const { return colPtr_; }
    const std::vector<int>& rowIdx() const { return rowIdx_; }
    const std::vector<double>& values() const { return values_; }
    std::vector<double>& values() { return values_; }

    /// Zero every stored value, keeping the pattern (start of an in-place
    /// re-stamping pass).
    void zeroValues() { std::fill(values_.begin(), values_.end(), 0.0); }

    /// y = A * x.
    std::vector<double> multiply(const std::vector<double>& x) const;

    /// Entry lookup (O(column nnz)); returns 0 for structural zeros.
    double at(int row, int col) const;

private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<int> colPtr_;   // size cols+1
    std::vector<int> rowIdx_;   // size nnz
    std::vector<double> values_;
};

/// Sparse LU with threshold partial pivoting (left-looking Gilbert-Peierls).
///
/// Factors P*A = L*U with a row permutation chosen per column: the diagonal
/// entry is kept as the pivot whenever its magnitude is within `pivotTol` of
/// the column maximum, which preserves the (mostly) diagonally dominant
/// structure of MNA matrices and limits fill-in.
///
/// factor() performs the full symbolic + numeric work and caches the L/U
/// nonzero pattern and pivot order. refactor() redoes only the numeric part
/// for a matrix with the SAME sparsity pattern, following the cached pattern
/// and pivots — no DFS, no pivot search, no allocation. A refactorization
/// that encounters a collapsed pivot returns false; call factor() again to
/// recover (fresh pivoting).
class SparseLu {
public:
    SparseLu() = default;
    explicit SparseLu(const SparseMatrixCsc& a, double pivotTol = 0.1) { factor(a, pivotTol); }

    /// Full symbolic + numeric factorization. Reuses internal storage across
    /// calls. Throws std::runtime_error on a singular matrix (the cached
    /// factorization is then unusable until a factor() succeeds).
    void factor(const SparseMatrixCsc& a, double pivotTol = 0.1);

    /// Numeric-only refactorization of a matrix with the same pattern as the
    /// last successful factor(). Returns false — leaving the factorization
    /// unusable until the next successful factor() — when the pattern doesn't
    /// match, or a pivot falls below `pivotFloor` times its column maximum
    /// (or is zero / non-finite): the cached pivot order has degraded and a
    /// fresh pivoting factorization is required.
    bool refactor(const SparseMatrixCsc& a, double pivotFloor = 1e-10);

    bool factored() const { return factored_; }

    std::vector<double> solve(const std::vector<double>& b) const;
    /// Allocation-free solve into a caller-owned vector (resized to n).
    void solveInto(const std::vector<double>& b, std::vector<double>& x) const;

    int size() const { return n_; }
    int fillIn() const;  ///< nnz(L)+nnz(U) - nnz(A)

private:
    int n_ = 0;
    int nnzA_ = 0;
    bool factored_ = false;
    // L: unit lower triangular (diagonal stored explicitly as 1.0, first in column).
    std::vector<int> lp_, li_;
    std::vector<double> lx_;
    // U: upper triangular (diagonal stored last in column).
    std::vector<int> up_, ui_;
    std::vector<double> ux_;
    std::vector<int> pinv_;  // row -> pivot position

    // Reused numeric scratch (kept zero outside active columns).
    std::vector<double> work_;
    std::vector<char> visited_;
    std::vector<int> xi_, pstack_;
};

}  // namespace fetcam::numeric
