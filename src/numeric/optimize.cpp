#include "numeric/optimize.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace fetcam::numeric {

ScalarMinResult minimizeGolden(const std::function<double(double)>& f, double lo, double hi,
                               double xTol, int maxEvaluations) {
    if (!(lo < hi)) throw std::invalid_argument("minimizeGolden: empty bracket");
    constexpr double kInvPhi = 0.6180339887498949;

    ScalarMinResult r;
    double a = lo, b = hi;
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    r.evaluations = 2;

    while (b - a > xTol && r.evaluations < maxEvaluations) {
        if (f1 <= f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = f(x2);
        }
        ++r.evaluations;
    }
    if (f1 <= f2) {
        r.x = x1;
        r.value = f1;
    } else {
        r.x = x2;
        r.value = f2;
    }
    return r;
}

ScalarMinResult minimizeOnGrid(const std::function<double(double)>& f,
                               const std::vector<double>& candidates) {
    if (candidates.empty()) throw std::invalid_argument("minimizeOnGrid: empty grid");
    ScalarMinResult r;
    r.x = candidates.front();
    r.value = f(candidates.front());
    r.evaluations = 1;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double v = f(candidates[i]);
        ++r.evaluations;
        if (v < r.value) {
            r.value = v;
            r.x = candidates[i];
        }
    }
    return r;
}

}  // namespace fetcam::numeric
