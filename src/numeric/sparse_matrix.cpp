#include "numeric/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fetcam::numeric {

SparseMatrixCsc SparseMatrixCsc::fromTriplets(const TripletList& t,
                                              std::vector<int>* slotOfEntry) {
    SparseMatrixCsc m;
    m.rows_ = t.rows();
    m.cols_ = t.cols();
    const auto& es = t.entries();

    // Count entries per column (including duplicates for now).
    std::vector<int> count(t.cols() + 1, 0);
    for (const auto& e : es) {
        if (e.row < 0 || e.row >= t.rows() || e.col < 0 || e.col >= t.cols())
            throw std::out_of_range("SparseMatrixCsc::fromTriplets: index out of range");
        ++count[e.col + 1];
    }
    std::vector<int> colStart(t.cols() + 1, 0);
    for (int c = 0; c < t.cols(); ++c) colStart[c + 1] = colStart[c] + count[c + 1];

    // Scatter into per-column buckets, remembering each entry's origin so the
    // stamp map can be reported in insertion order.
    std::vector<int> rows(es.size());
    std::vector<double> vals(es.size());
    std::vector<int> origin(es.size());
    std::vector<int> fill = colStart;
    for (std::size_t i = 0; i < es.size(); ++i) {
        const auto& e = es[i];
        const int slot = fill[e.col]++;
        rows[slot] = e.row;
        vals[slot] = e.value;
        origin[slot] = static_cast<int>(i);
    }
    if (slotOfEntry) slotOfEntry->assign(es.size(), -1);

    // Sort each column by row and merge duplicates.
    m.colPtr_.assign(t.cols() + 1, 0);
    m.rowIdx_.reserve(es.size());
    m.values_.reserve(es.size());
    std::vector<int> order;
    for (int c = 0; c < t.cols(); ++c) {
        const int lo = colStart[c];
        const int hi = colStart[c + 1];
        order.resize(hi - lo);
        for (int i = 0; i < hi - lo; ++i) order[i] = lo + i;
        std::sort(order.begin(), order.end(), [&](int a, int b) { return rows[a] < rows[b]; });
        int lastRow = -1;
        for (int idx : order) {
            if (rows[idx] != lastRow) {
                m.rowIdx_.push_back(rows[idx]);
                m.values_.push_back(vals[idx]);
                lastRow = rows[idx];
            } else {
                m.values_.back() += vals[idx];
            }
            if (slotOfEntry)
                (*slotOfEntry)[origin[idx]] = static_cast<int>(m.values_.size()) - 1;
        }
        m.colPtr_[c + 1] = static_cast<int>(m.rowIdx_.size());
    }
    return m;
}

std::vector<double> SparseMatrixCsc::multiply(const std::vector<double>& x) const {
    if (static_cast<int>(x.size()) != cols_)
        throw std::invalid_argument("SparseMatrixCsc::multiply: size mismatch");
    std::vector<double> y(rows_, 0.0);
    for (int c = 0; c < cols_; ++c) {
        const double xc = x[c];
        if (xc == 0.0) continue;
        for (int p = colPtr_[c]; p < colPtr_[c + 1]; ++p) y[rowIdx_[p]] += values_[p] * xc;
    }
    return y;
}

double SparseMatrixCsc::at(int row, int col) const {
    for (int p = colPtr_[col]; p < colPtr_[col + 1]; ++p)
        if (rowIdx_[p] == row) return values_[p];
    return 0.0;
}

namespace {

/// Iterative depth-first search over the pattern of the partially built L,
/// recording reached nodes in topological order at xi[top-1], xi[top-2], ...
/// Returns the new top. `pinv` maps original rows to pivot positions (-1 if
/// the row is not yet pivotal, in which case it has no L column to traverse).
int luDfs(int start, const std::vector<int>& lp, const std::vector<int>& li,
          const std::vector<int>& pinv, std::vector<char>& visited, std::vector<int>& xi,
          std::vector<int>& pstack, int top) {
    int head = 0;
    xi[0] = start;
    while (head >= 0) {
        const int j = xi[head];
        const int jPivot = pinv[j];
        if (!visited[j]) {
            visited[j] = 1;
            pstack[head] = (jPivot < 0) ? 0 : lp[jPivot];
        }
        bool done = true;
        const int pEnd = (jPivot < 0) ? 0 : lp[jPivot + 1];
        for (int p = pstack[head]; p < pEnd; ++p) {
            const int child = li[p];
            if (visited[child]) continue;
            pstack[head] = p;       // resume here (child will be marked visited)
            xi[++head] = child;     // recurse into child
            done = false;
            break;
        }
        if (done) {
            --head;
            xi[--top] = j;  // postorder: all descendants already emitted
        }
    }
    return top;
}

}  // namespace

void SparseLu::factor(const SparseMatrixCsc& a, double pivotTol) {
    if (a.rows() != a.cols()) throw std::invalid_argument("SparseLu: matrix must be square");
    factored_ = false;
    n_ = a.rows();
    nnzA_ = a.nonZeros();
    const auto& ap = a.colPtr();
    const auto& ai = a.rowIdx();
    const auto& ax = a.values();

    lp_.assign(n_ + 1, 0);
    up_.assign(n_ + 1, 0);
    pinv_.assign(n_, -1);
    li_.clear();
    lx_.clear();
    ui_.clear();
    ux_.clear();
    li_.reserve(4 * nnzA_);
    lx_.reserve(4 * nnzA_);
    ui_.reserve(4 * nnzA_);
    ux_.reserve(4 * nnzA_);

    work_.assign(n_, 0.0);
    visited_.assign(n_, 0);
    xi_.resize(n_);
    pstack_.resize(n_);
    auto& x = work_;

    for (int col = 0; col < n_; ++col) {
        // --- Symbolic: nodes reachable from the pattern of A(:,col) through L.
        int top = n_;
        for (int p = ap[col]; p < ap[col + 1]; ++p)
            if (!visited_[ai[p]])
                top = luDfs(ai[p], lp_, li_, pinv_, visited_, xi_, pstack_, top);

        // --- Numeric: scatter A(:,col) and run the sparse triangular solve.
        for (int p = top; p < n_; ++p) x[xi_[p]] = 0.0;
        for (int p = ap[col]; p < ap[col + 1]; ++p) x[ai[p]] = ax[p];
        for (int p = top; p < n_; ++p) {
            const int row = xi_[p];
            const int rowPivot = pinv_[row];
            if (rowPivot < 0) continue;  // not yet pivotal: stays in L
            // L's columns store the unit diagonal first; divide is by 1.0.
            const double xj = x[row];
            for (int q = lp_[rowPivot] + 1; q < lp_[rowPivot + 1]; ++q)
                x[li_[q]] -= lx_[q] * xj;
        }

        // --- Pivot selection: largest magnitude among non-pivotal rows, with a
        // threshold preference for the diagonal.
        int pivotRow = -1;
        double pivotMag = -1.0;
        for (int p = top; p < n_; ++p) {
            const int row = xi_[p];
            if (pinv_[row] >= 0) continue;
            const double mag = std::abs(x[row]);
            if (mag > pivotMag) {
                pivotMag = mag;
                pivotRow = row;
            }
        }
        if (pivotRow < 0 || pivotMag <= 0.0) {
            // Leave the scratch zeroed for the next factor()/refactor() call.
            for (int p = top; p < n_; ++p) {
                visited_[xi_[p]] = 0;
                x[xi_[p]] = 0.0;
            }
            throw std::runtime_error("SparseLu: singular matrix");
        }
        if (pinv_[col] < 0 && std::abs(x[col]) >= pivotTol * pivotMag) pivotRow = col;
        const double pivotValue = x[pivotRow];

        // --- Emit U(:,col): all pivotal rows, then the diagonal last.
        for (int p = top; p < n_; ++p) {
            const int row = xi_[p];
            if (pinv_[row] >= 0) {
                ui_.push_back(pinv_[row]);
                ux_.push_back(x[row]);
            }
        }
        ui_.push_back(col);
        ux_.push_back(pivotValue);
        up_[col + 1] = static_cast<int>(ui_.size());

        // --- Emit L(:,col): unit diagonal first, then subdiagonal entries.
        pinv_[pivotRow] = col;
        li_.push_back(pivotRow);
        lx_.push_back(1.0);
        for (int p = top; p < n_; ++p) {
            const int row = xi_[p];
            if (pinv_[row] < 0 && row != pivotRow) {
                li_.push_back(row);
                lx_.push_back(x[row] / pivotValue);
            }
        }
        lp_[col + 1] = static_cast<int>(li_.size());

        // --- Reset work arrays for the next column.
        for (int p = top; p < n_; ++p) {
            visited_[xi_[p]] = 0;
            x[xi_[p]] = 0.0;
        }
    }

    // Remap L's row indices into pivot order so L is genuinely lower triangular.
    for (auto& row : li_) row = pinv_[row];
    factored_ = true;
}

bool SparseLu::refactor(const SparseMatrixCsc& a, double pivotFloor) {
    if (!factored_ || a.rows() != n_ || a.cols() != n_ || a.nonZeros() != nnzA_) {
        factored_ = false;
        return false;
    }
    const auto& ap = a.colPtr();
    const auto& ai = a.rowIdx();
    const auto& ax = a.values();
    auto& x = work_;  // all-zero outside active columns (invariant kept below)

    for (int col = 0; col < n_; ++col) {
        // Scatter A(:,col) in pivot space. Every scattered position lies in
        // the cached L/U pattern of this column (the pattern is the DFS
        // closure of A(:,col)), so the reset at the end covers it.
        for (int p = ap[col]; p < ap[col + 1]; ++p) x[pinv_[ai[p]]] = ax[p];

        // Replay the sparse triangular solve in the stored topological order:
        // U(:,col)'s pivotal rows were emitted exactly in elimination order.
        // Each x[u] is consumed exactly once and (by the topological order)
        // never written again this column, so it is re-zeroed on the spot —
        // no separate reset pass over the pattern.
        for (int j = up_[col]; j < up_[col + 1] - 1; ++j) {
            const int u = ui_[j];
            const double xu = x[u];
            ux_[j] = xu;
            x[u] = 0.0;
            if (xu != 0.0)
                for (int q = lp_[u] + 1; q < lp_[u + 1]; ++q) x[li_[q]] -= lx_[q] * xu;
        }

        const double pivot = x[col];
        x[col] = 0.0;
        // One fused pass over L(:,col): track the column max for the pivot
        // health check, divide, and re-zero. On pivot failure the half-updated
        // lx_/ux_ values are discarded anyway (factored_ drops below).
        double colMax = std::abs(pivot);
        for (int q = lp_[col] + 1; q < lp_[col + 1]; ++q) {
            const double v = x[li_[q]];
            x[li_[q]] = 0.0;
            colMax = std::max(colMax, std::abs(v));
            lx_[q] = v / pivot;
        }

        // Pivot health: the cached pivot order degrades when the diagonal (in
        // pivot space) collapses relative to its column — bail out so the
        // caller can run a fresh pivoting factorization.
        if (!std::isfinite(colMax) || pivot == 0.0 || !(std::abs(pivot) >= pivotFloor * colMax)) {
            std::fill(x.begin(), x.end(), 0.0);  // restore the scratch invariant
            factored_ = false;
            return false;
        }

        ux_[up_[col + 1] - 1] = pivot;
    }
    return true;
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
    std::vector<double> x;
    solveInto(b, x);
    return x;
}

void SparseLu::solveInto(const std::vector<double>& b, std::vector<double>& x) const {
    if (static_cast<int>(b.size()) != n_) throw std::invalid_argument("SparseLu::solve: size");
    if (!factored_) throw std::runtime_error("SparseLu::solve: not factored");
    x.resize(n_);
    for (int i = 0; i < n_; ++i) x[pinv_[i]] = b[i];  // x = P*b
    // Forward solve L*y = x (unit diagonal stored first in each column).
    for (int c = 0; c < n_; ++c) {
        const double xc = x[c];
        for (int p = lp_[c] + 1; p < lp_[c + 1]; ++p) x[li_[p]] -= lx_[p] * xc;
    }
    // Back solve U*z = y (diagonal stored last in each column).
    for (int c = n_ - 1; c >= 0; --c) {
        x[c] /= ux_[up_[c + 1] - 1];
        const double xc = x[c];
        for (int p = up_[c]; p < up_[c + 1] - 1; ++p) x[ui_[p]] -= ux_[p] * xc;
    }
}

int SparseLu::fillIn() const {
    return static_cast<int>(li_.size() + ui_.size()) - nnzA_;
}

}  // namespace fetcam::numeric
