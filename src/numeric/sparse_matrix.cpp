#include "numeric/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fetcam::numeric {

SparseMatrixCsc SparseMatrixCsc::fromTriplets(const TripletList& t) {
    SparseMatrixCsc m;
    m.rows_ = t.rows();
    m.cols_ = t.cols();
    const auto& es = t.entries();

    // Count entries per column (including duplicates for now).
    std::vector<int> count(t.cols() + 1, 0);
    for (const auto& e : es) {
        if (e.row < 0 || e.row >= t.rows() || e.col < 0 || e.col >= t.cols())
            throw std::out_of_range("SparseMatrixCsc::fromTriplets: index out of range");
        ++count[e.col + 1];
    }
    std::vector<int> colStart(t.cols() + 1, 0);
    for (int c = 0; c < t.cols(); ++c) colStart[c + 1] = colStart[c] + count[c + 1];

    // Scatter into per-column buckets.
    std::vector<int> rows(es.size());
    std::vector<double> vals(es.size());
    std::vector<int> fill = colStart;
    for (const auto& e : es) {
        const int slot = fill[e.col]++;
        rows[slot] = e.row;
        vals[slot] = e.value;
    }

    // Sort each column by row and merge duplicates.
    m.colPtr_.assign(t.cols() + 1, 0);
    m.rowIdx_.reserve(es.size());
    m.values_.reserve(es.size());
    std::vector<int> order;
    for (int c = 0; c < t.cols(); ++c) {
        const int lo = colStart[c];
        const int hi = colStart[c + 1];
        order.resize(hi - lo);
        for (int i = 0; i < hi - lo; ++i) order[i] = lo + i;
        std::sort(order.begin(), order.end(), [&](int a, int b) { return rows[a] < rows[b]; });
        int lastRow = -1;
        for (int idx : order) {
            if (rows[idx] == lastRow) {
                m.values_.back() += vals[idx];
            } else {
                m.rowIdx_.push_back(rows[idx]);
                m.values_.push_back(vals[idx]);
                lastRow = rows[idx];
            }
        }
        m.colPtr_[c + 1] = static_cast<int>(m.rowIdx_.size());
    }
    return m;
}

std::vector<double> SparseMatrixCsc::multiply(const std::vector<double>& x) const {
    if (static_cast<int>(x.size()) != cols_)
        throw std::invalid_argument("SparseMatrixCsc::multiply: size mismatch");
    std::vector<double> y(rows_, 0.0);
    for (int c = 0; c < cols_; ++c) {
        const double xc = x[c];
        if (xc == 0.0) continue;
        for (int p = colPtr_[c]; p < colPtr_[c + 1]; ++p) y[rowIdx_[p]] += values_[p] * xc;
    }
    return y;
}

double SparseMatrixCsc::at(int row, int col) const {
    for (int p = colPtr_[col]; p < colPtr_[col + 1]; ++p)
        if (rowIdx_[p] == row) return values_[p];
    return 0.0;
}

namespace {

/// Iterative depth-first search over the pattern of the partially built L,
/// recording reached nodes in topological order at xi[top-1], xi[top-2], ...
/// Returns the new top. `pinv` maps original rows to pivot positions (-1 if
/// the row is not yet pivotal, in which case it has no L column to traverse).
int luDfs(int start, const std::vector<int>& lp, const std::vector<int>& li,
          const std::vector<int>& pinv, std::vector<char>& visited, std::vector<int>& xi,
          std::vector<int>& pstack, int top) {
    int head = 0;
    xi[0] = start;
    while (head >= 0) {
        const int j = xi[head];
        const int jPivot = pinv[j];
        if (!visited[j]) {
            visited[j] = 1;
            pstack[head] = (jPivot < 0) ? 0 : lp[jPivot];
        }
        bool done = true;
        const int pEnd = (jPivot < 0) ? 0 : lp[jPivot + 1];
        for (int p = pstack[head]; p < pEnd; ++p) {
            const int child = li[p];
            if (visited[child]) continue;
            pstack[head] = p;       // resume here (child will be marked visited)
            xi[++head] = child;     // recurse into child
            done = false;
            break;
        }
        if (done) {
            --head;
            xi[--top] = j;  // postorder: all descendants already emitted
        }
    }
    return top;
}

}  // namespace

SparseLu::SparseLu(const SparseMatrixCsc& a, double pivotTol) {
    if (a.rows() != a.cols()) throw std::invalid_argument("SparseLu: matrix must be square");
    n_ = a.rows();
    nnzA_ = a.nonZeros();
    const auto& ap = a.colPtr();
    const auto& ai = a.rowIdx();
    const auto& ax = a.values();

    lp_.assign(n_ + 1, 0);
    up_.assign(n_ + 1, 0);
    pinv_.assign(n_, -1);
    li_.clear();
    lx_.clear();
    ui_.clear();
    ux_.clear();
    li_.reserve(4 * nnzA_);
    lx_.reserve(4 * nnzA_);
    ui_.reserve(4 * nnzA_);
    ux_.reserve(4 * nnzA_);

    std::vector<double> x(n_, 0.0);
    std::vector<char> visited(n_, 0);
    std::vector<int> xi(n_), pstack(n_);

    for (int col = 0; col < n_; ++col) {
        // --- Symbolic: nodes reachable from the pattern of A(:,col) through L.
        int top = n_;
        for (int p = ap[col]; p < ap[col + 1]; ++p)
            if (!visited[ai[p]]) top = luDfs(ai[p], lp_, li_, pinv_, visited, xi, pstack, top);

        // --- Numeric: scatter A(:,col) and run the sparse triangular solve.
        for (int p = top; p < n_; ++p) x[xi[p]] = 0.0;
        for (int p = ap[col]; p < ap[col + 1]; ++p) x[ai[p]] = ax[p];
        for (int p = top; p < n_; ++p) {
            const int row = xi[p];
            const int rowPivot = pinv_[row];
            if (rowPivot < 0) continue;  // not yet pivotal: stays in L
            // L's columns store the unit diagonal first; divide is by 1.0.
            const double xj = x[row];
            for (int q = lp_[rowPivot] + 1; q < lp_[rowPivot + 1]; ++q)
                x[li_[q]] -= lx_[q] * xj;
        }

        // --- Pivot selection: largest magnitude among non-pivotal rows, with a
        // threshold preference for the diagonal.
        int pivotRow = -1;
        double pivotMag = -1.0;
        for (int p = top; p < n_; ++p) {
            const int row = xi[p];
            if (pinv_[row] >= 0) continue;
            const double mag = std::abs(x[row]);
            if (mag > pivotMag) {
                pivotMag = mag;
                pivotRow = row;
            }
        }
        if (pivotRow < 0 || pivotMag <= 0.0) throw std::runtime_error("SparseLu: singular matrix");
        if (pinv_[col] < 0 && std::abs(x[col]) >= pivotTol * pivotMag) pivotRow = col;
        const double pivotValue = x[pivotRow];

        // --- Emit U(:,col): all pivotal rows, then the diagonal last.
        for (int p = top; p < n_; ++p) {
            const int row = xi[p];
            if (pinv_[row] >= 0) {
                ui_.push_back(pinv_[row]);
                ux_.push_back(x[row]);
            }
        }
        ui_.push_back(col);
        ux_.push_back(pivotValue);
        up_[col + 1] = static_cast<int>(ui_.size());

        // --- Emit L(:,col): unit diagonal first, then subdiagonal entries.
        pinv_[pivotRow] = col;
        li_.push_back(pivotRow);
        lx_.push_back(1.0);
        for (int p = top; p < n_; ++p) {
            const int row = xi[p];
            if (pinv_[row] < 0 && row != pivotRow) {
                li_.push_back(row);
                lx_.push_back(x[row] / pivotValue);
            }
        }
        lp_[col + 1] = static_cast<int>(li_.size());

        // --- Reset work arrays for the next column.
        for (int p = top; p < n_; ++p) {
            visited[xi[p]] = 0;
            x[xi[p]] = 0.0;
        }
    }

    // Remap L's row indices into pivot order so L is genuinely lower triangular.
    for (auto& row : li_) row = pinv_[row];
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
    if (static_cast<int>(b.size()) != n_) throw std::invalid_argument("SparseLu::solve: size");
    std::vector<double> x(n_);
    for (int i = 0; i < n_; ++i) x[pinv_[i]] = b[i];  // x = P*b
    // Forward solve L*y = x (unit diagonal stored first in each column).
    for (int c = 0; c < n_; ++c) {
        const double xc = x[c];
        for (int p = lp_[c] + 1; p < lp_[c + 1]; ++p) x[li_[p]] -= lx_[p] * xc;
    }
    // Back solve U*z = y (diagonal stored last in each column).
    for (int c = n_ - 1; c >= 0; --c) {
        x[c] /= ux_[up_[c + 1] - 1];
        const double xc = x[c];
        for (int p = up_[c]; p < up_[c + 1] - 1; ++p) x[ui_[p]] -= ux_[p] * xc;
    }
    return x;
}

int SparseLu::fillIn() const {
    return static_cast<int>(li_.size() + ui_.size()) - nnzA_;
}

}  // namespace fetcam::numeric
