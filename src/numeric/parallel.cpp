#include "numeric/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fetcam::numeric {

namespace {

std::atomic<int> gDefaultJobs{1};

// Nested parallelFor calls run inline: the outer team already owns the
// hardware, and oversubscribing would wreck determinism-debugging runs.
thread_local bool tInsideParallelFor = false;

}  // namespace

int hardwareConcurrency() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

int defaultJobs() { return gDefaultJobs.load(std::memory_order_relaxed); }

void setDefaultJobs(int jobs) {
    gDefaultJobs.store(jobs <= 0 ? hardwareConcurrency() : jobs, std::memory_order_relaxed);
}

int resolveJobs(int jobs) {
    if (jobs == 0) return defaultJobs();
    if (jobs < 0) return hardwareConcurrency();
    return jobs;
}

int parseJobs(const std::string& text) {
    std::size_t consumed = 0;
    long long value = 0;
    try {
        value = std::stoll(text, &consumed, 10);
    } catch (const std::exception&) {
        throw std::invalid_argument("--jobs expects an integer, got '" + text + "'");
    }
    if (consumed != text.size() || text.empty())
        throw std::invalid_argument("--jobs expects an integer, got '" + text + "'");
    if (value <= 0) return hardwareConcurrency();
    return static_cast<int>(std::min<long long>(value, kMaxJobs));
}

void parallelFor(int jobs, int count, const std::function<void(int)>& fn) {
    if (count <= 0) return;
    jobs = std::min(resolveJobs(jobs), count);
    if (jobs <= 1 || tInsideParallelFor) {
        for (int i = 0; i < count; ++i) fn(i);
        return;
    }

    std::atomic<int> next{0};
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(count));
    auto worker = [&]() {
        tInsideParallelFor = true;
        for (;;) {
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) break;
            try {
                fn(i);
            } catch (...) {
                errors[static_cast<std::size_t>(i)] = std::current_exception();
            }
        }
        tInsideParallelFor = false;
    };

    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(jobs) - 1);
    for (int t = 1; t < jobs; ++t) team.emplace_back(worker);
    worker();  // the calling thread is part of the team
    for (auto& t : team) t.join();

    // Sequential semantics: surface the failure a serial loop would have hit
    // first. Later indices' errors are intentionally dropped (a serial loop
    // would never have reached them).
    for (auto& e : errors)
        if (e) std::rethrow_exception(e);
}

}  // namespace fetcam::numeric
