#include "numeric/interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fetcam::numeric {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
    if (xs_.size() != ys_.size()) throw std::invalid_argument("PiecewiseLinear: size mismatch");
    // A NaN knot would also pass the pairwise comparison below (every
    // comparison with NaN is false) and then break upper_bound's partition
    // invariant, so finiteness has to be checked explicitly.
    for (const double x : xs_)
        if (!std::isfinite(x))
            throw std::invalid_argument("PiecewiseLinear: x knots must be finite");
    for (std::size_t i = 1; i < xs_.size(); ++i)
        if (xs_[i] <= xs_[i - 1])
            throw std::invalid_argument("PiecewiseLinear: x must be strictly increasing");
}

std::size_t PiecewiseLinear::segmentUpper(double x) const {
    // Callers have already excluded x <= front and x >= back, so the result
    // is in [1, size-1] for any well-ordered knot vector; the clamp below is
    // a belt-and-braces guard so no comparison pathology can ever index
    // one-past-the-end or produce a zero-width interval at the boundary.
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    const auto hi = static_cast<std::size_t>(it - xs_.begin());
    return std::clamp<std::size_t>(hi, 1, xs_.size() - 1);
}

double PiecewiseLinear::operator()(double x) const {
    if (xs_.empty()) return 0.0;
    if (std::isnan(x)) return std::numeric_limits<double>::quiet_NaN();
    if (x <= xs_.front()) return ys_.front();
    if (x >= xs_.back()) return ys_.back();
    const std::size_t hi = segmentUpper(x);
    const std::size_t lo = hi - 1;
    const double dx = xs_[hi] - xs_[lo];
    if (!(dx > 0.0)) return ys_[hi];
    const double t = (x - xs_[lo]) / dx;
    return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseLinear::slope(double x) const {
    if (std::isnan(x)) return 0.0;
    if (xs_.size() < 2 || x <= xs_.front() || x >= xs_.back()) return 0.0;
    const std::size_t hi = segmentUpper(x);
    const std::size_t lo = hi - 1;
    const double dx = xs_[hi] - xs_[lo];
    return dx > 0.0 ? (ys_[hi] - ys_[lo]) / dx : 0.0;
}

std::optional<double> firstCrossing(const std::vector<double>& xs, const std::vector<double>& ys,
                                    double level, bool rising, double from) {
    for (std::size_t i = 1; i < xs.size(); ++i) {
        if (xs[i] < from) continue;
        const double y0 = ys[i - 1];
        const double y1 = ys[i];
        const bool crossed = rising ? (y0 < level && y1 >= level) : (y0 > level && y1 <= level);
        if (!crossed) continue;
        const double t = (level - y0) / (y1 - y0);
        const double x = xs[i - 1] + t * (xs[i] - xs[i - 1]);
        if (x >= from) return x;
    }
    return std::nullopt;
}

double trapezoid(const std::vector<double>& xs, const std::vector<double>& ys) {
    if (xs.size() != ys.size()) throw std::invalid_argument("trapezoid: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 1; i < xs.size(); ++i)
        acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    return acc;
}

}  // namespace fetcam::numeric
