// Complex dense matrix + LU, for small-signal (AC) circuit analysis.
// AC systems are assembled dense: the circuits characterized in the
// frequency domain (sense paths, drivers) are small.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace fetcam::numeric {

using Complex = std::complex<double>;

class ComplexDenseMatrix {
public:
    ComplexDenseMatrix() = default;
    ComplexDenseMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    Complex& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    Complex operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    std::vector<Complex> multiply(const std::vector<Complex>& x) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

/// LU with partial pivoting over the complex field.
/// Throws std::runtime_error on singular input.
std::vector<Complex> solveComplexDense(ComplexDenseMatrix a, std::vector<Complex> b);

}  // namespace fetcam::numeric
