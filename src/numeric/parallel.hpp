// Deterministic fork-join parallelism for embarrassingly parallel sweeps.
//
// parallelFor runs fn(0..count-1) across a team of threads that pull indices
// from a shared atomic counter (dynamic scheduling, no work stealing, no
// per-thread deques). Callers that need deterministic results write each
// index's output into a preallocated per-index slot and merge in index order
// after the call returns — the schedule never influences the result.
//
// Exceptions thrown by fn are captured per index; after the join, the
// exception for the LOWEST failing index is rethrown, which makes the
// parallel failure identical to what a sequential loop would have raised.
#pragma once

#include <functional>
#include <string>

namespace fetcam::numeric {

/// Number of hardware threads (>= 1 even when unknown).
int hardwareConcurrency();

/// Process-wide default worker count used when a sweep is asked for `jobs=0`.
/// Starts at 1 (serial) so library users opt in explicitly; the CLI/bench
/// `--jobs` flags call setDefaultJobs.
int defaultJobs();

/// Set the process-wide default worker count. `jobs <= 0` selects
/// hardwareConcurrency(). Not synchronized with concurrently running sweeps —
/// call it from startup code.
void setDefaultJobs(int jobs);

/// Resolve a user-facing jobs parameter: 0 -> defaultJobs(), negative ->
/// hardwareConcurrency(), otherwise the value itself.
int resolveJobs(int jobs);

/// Ceiling applied by parseJobs: a fat-fingered `--jobs 100000` should not
/// turn into a hundred thousand threads.
inline constexpr int kMaxJobs = 1024;

/// The one parser behind every `--jobs` flag (CLI tools and benches), so all
/// call sites agree on the semantics:
///   * strict decimal integer — anything else (empty, trailing junk, "4k")
///     throws std::invalid_argument instead of silently becoming 0,
///   * 0 or negative -> hardwareConcurrency() ("use every core"),
///   * positive values clamp to kMaxJobs.
/// Returns the resolved worker count (always in [1, kMaxJobs]).
int parseJobs(const std::string& text);

/// Run fn(i) for i in [0, count). With jobs <= 1 (or count <= 1, or when
/// called from inside another parallelFor) the loop runs inline on the
/// calling thread in index order. Otherwise min(jobs, count) threads pull
/// indices from an atomic counter. Blocks until every index completed; then
/// rethrows the exception of the lowest failing index, if any.
void parallelFor(int jobs, int count, const std::function<void(int)>& fn);

}  // namespace fetcam::numeric
