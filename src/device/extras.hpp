// Additional linear elements completing the simulator's palette: inductor
// (branch-based companion model) and linear controlled sources (VCVS/VCCS),
// used for behavioral modelling and driver/package parasitics.
#pragma once

#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace fetcam::device {

/// Inductor with its current as an extra MNA branch unknown.
/// Transient: trapezoidal/BE companion; DC: ideal short (0 V source).
class Inductor : public spice::Device {
public:
    Inductor(std::string name, spice::Circuit& circuit, spice::NodeId a, spice::NodeId b,
             double inductance);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return iPrev_; }
    double inductance() const { return l_; }

private:
    spice::NodeId a_, b_;
    int branch_;
    double l_;
    double iPrev_ = 0.0;
    double vPrev_ = 0.0;
    spice::EnergyIntegrator energy_;
};

/// Voltage-controlled voltage source: v(p,n) = gain * v(cp,cn).
class Vcvs : public spice::Device {
public:
    Vcvs(std::string name, spice::Circuit& circuit, spice::NodeId p, spice::NodeId n,
         spice::NodeId cp, spice::NodeId cn, double gain);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastCurrent_; }
    double gain() const { return gain_; }

private:
    spice::NodeId p_, n_, cp_, cn_;
    int branch_;
    double gain_;
    double lastCurrent_ = 0.0;
    spice::EnergyIntegrator energy_;
};

/// Voltage-controlled current source: i(p->n) = gm * v(cp,cn).
class Vccs : public spice::Device {
public:
    Vccs(std::string name, spice::NodeId p, spice::NodeId n, spice::NodeId cp,
         spice::NodeId cn, double transconductance);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastCurrent_; }

private:
    spice::NodeId p_, n_, cp_, cn_;
    double gm_;
    double lastCurrent_ = 0.0;
    spice::EnergyIntegrator energy_;
};

}  // namespace fetcam::device
