// Technology card: one place for every device/process parameter the TCAM
// studies sweep. Values are representative of a 45 nm logic process with a
// BEOL HfZrO2 FeFET option and a 1T1R-class ReRAM option, assembled from the
// open literature of the DATE-2021 era (see DESIGN.md for the substitution
// rationale).
#pragma once

#include "device/fefet.hpp"
#include "device/mosfet.hpp"
#include "device/reram.hpp"

namespace fetcam::device {

/// Global process corners (first letter NMOS, second PMOS).
enum class Corner { TT, FF, SS, FS, SF };

constexpr const char* cornerName(Corner c) {
    switch (c) {
        case Corner::TT: return "TT";
        case Corner::FF: return "FF";
        case Corner::SS: return "SS";
        case Corner::FS: return "FS";
        case Corner::SF: return "SF";
    }
    return "?";
}

struct TechCard {
    // Supplies.
    double vdd = 1.0;          ///< logic supply [V]
    double vWriteFe = 3.2;     ///< FeFET program/erase gate voltage [V]
    double tWriteFe = 100e-9;  ///< FeFET write pulse width [s]
    double vWriteReram = 2.2;  ///< ReRAM SET/RESET magnitude [V]
    double tWriteReram = 30e-9;///< ReRAM write pulse width [s]

    // Transistors.
    MosfetParams nmos;
    MosfetParams pmos;

    // FeFET (n-type) and its gate stack.
    FeFetParams fefet;

    // ReRAM.
    ReramParams reram;

    // Interconnect parasitics, per cell pitch.
    double mlWireCapPerCell = 0.10e-15;  ///< matchline wire cap per cell [F]
    double mlWireResPerCell = 4.0;       ///< matchline wire res per cell [ohm]
    double slWireCapPerCell = 0.08e-15;  ///< searchline wire cap per cell [F]

    // Driver output impedances. Real drivers dissipate the full C*V^2 of the
    // lines they toggle; modelling them as ideal sources would (wrongly) let
    // the falling edge return energy to the supply.
    double slDriverRes = 1.0e3;    ///< searchline driver [ohm]
    double ctrlDriverRes = 500.0;  ///< precharge/strobe gate drivers [ohm]

    // Area proxies (layout footprint per cell, in F^2 of the 45 nm node),
    // used for iso-capacity comparisons; from published cell layouts.
    double areaCell16T = 332.0;
    double areaCell2T2R = 46.0;
    double areaCell2FeFet = 30.0;
    double areaCell2FeFetNand = 20.0;  ///< series chain saves the ML contact

    /// Operating temperature [K] the card's parameters are valid at.
    double temperatureK = 300.0;

    /// NMOS/PMOS with a given width multiple of the minimum width.
    MosfetParams sizedNmos(double widthMultiple) const;
    MosfetParams sizedPmos(double widthMultiple) const;

    /// Re-derive the card at a different temperature. First-order models:
    ///   Ut ~ kT/q;  |VT| drifts -1 mV/K;  mobility ~ (T/300)^-1.5;
    ///   ferroelectric Vc and Ps soften ~ -0.1%/K and -0.05%/K;
    ///   ReRAM switching accelerates exponentially (thermally activated).
    /// Must be called on a 300 K card (cmos45()); throws otherwise.
    TechCard atTemperature(double kelvin) const;

    /// Re-derive the card at a global process corner: fast devices get
    /// -30 mV |VT| and +10% mobility, slow devices the opposite. The FeFET
    /// channel follows the NMOS skew (same front-end), its ferroelectric is
    /// corner-independent (BEOL module).
    TechCard atCorner(Corner corner) const;

    /// Default 45 nm-class card (300 K).
    static TechCard cmos45();
};

}  // namespace fetcam::device
