#include "device/ferro.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/ac.hpp"

namespace fetcam::device {

namespace {
constexpr double kEps0 = 8.854e-12;  // [F/m]
}

double FerroParams::linearCapPerArea() const { return kEps0 * epsR / thickness; }

PreisachBank::PreisachBank(const FerroParams& params) : params_(params) {
    const int n = params.numHysterons;
    if (n < 1) throw std::invalid_argument("PreisachBank: need at least one hysteron");
    vc_.resize(n);
    weight_.resize(n);
    state_.assign(n, -1.0);

    // Coercive voltages on a +/-3 sigma grid around the mean, truncated at a
    // small positive floor; Gaussian weights, normalized.
    double wSum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double frac = n == 1 ? 0.0 : (static_cast<double>(i) / (n - 1) - 0.5) * 6.0;
        vc_[i] = std::max(0.05, params.vcMean + frac * params.vcSigma);
        const double w = std::exp(-0.5 * frac * frac);
        weight_[i] = w;
        wSum += w;
    }
    for (auto& w : weight_) w /= wSum;
}

void PreisachBank::reset(double pnorm) {
    if (pnorm < -1.0 || pnorm > 1.0)
        throw std::invalid_argument("PreisachBank::reset: pnorm outside [-1,1]");
    for (auto& s : state_) s = pnorm;
}

void PreisachBank::advance(double v, double dt) {
    const double mag = std::abs(v);
    for (std::size_t i = 0; i < vc_.size(); ++i) {
        if (mag <= vc_[i]) continue;  // below threshold: hold (non-volatile)
        const double target = v > 0.0 ? 1.0 : -1.0;
        const double tau = params_.tau0 * std::exp(params_.kMerz * vc_[i] / mag);
        const double alpha = 1.0 - std::exp(-dt / tau);
        state_[i] += (target - state_[i]) * alpha;
    }
}

void PreisachBank::settle(double v) {
    const double mag = std::abs(v);
    for (std::size_t i = 0; i < vc_.size(); ++i) {
        if (mag <= vc_[i]) continue;
        state_[i] = v > 0.0 ? 1.0 : -1.0;
    }
}

void PreisachBank::relax(double seconds) {
    if (seconds < 0.0) throw std::invalid_argument("PreisachBank::relax: negative time");
    const double factor = std::exp(-seconds / params_.tauRetention);
    for (auto& s : state_) s *= factor;
}

double PreisachBank::pnorm() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < vc_.size(); ++i) acc += weight_[i] * state_[i];
    return acc * endurance_;
}

double PreisachBank::enduranceFactor(double cycles) const {
    if (cycles < 0.0) throw std::invalid_argument("enduranceFactor: negative cycles");
    const auto& p = params_;
    // Wake-up: pristine -> 1.0 linearly in log10(cycles).
    double f;
    if (cycles <= 1.0) {
        f = p.pristineFactor;
    } else if (cycles <= p.wakeupCycles) {
        const double t = std::log10(cycles) / std::log10(p.wakeupCycles);
        f = p.pristineFactor + (1.0 - p.pristineFactor) * t;
    } else if (cycles <= p.fatigueOnsetCycles) {
        f = 1.0;
    } else {
        f = 1.0 - p.fatiguePerDecade * std::log10(cycles / p.fatigueOnsetCycles);
    }
    return std::max(p.fatigueFloor, f);
}

void PreisachBank::setCyclingHistory(double cycles) {
    cycles_ = cycles;
    endurance_ = enduranceFactor(cycles);
}

FerroCap::FerroCap(std::string name, spice::NodeId a, spice::NodeId b, FerroParams params,
                   double area)
    : Device(std::move(name)), a_(a), b_(b), bank_(params), area_(area),
      linear_(params.linearCapPerArea() * area) {
    if (area <= 0.0) throw std::invalid_argument("FerroCap: area must be > 0");
}

double FerroCap::charge(double v) const {
    return linear_.capacitance() * v + area_ * bank_.params().ps * bank_.pnorm();
}

void FerroCap::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    linear_.stamp(mna, ctx, a_, b_);
    if (ctx.mode == spice::AnalysisMode::Dc || ctx.dt <= 0.0) return;
    // Polarization switching is integrated explicitly: the rate committed at
    // the end of the previous step (ipPrev_) drives this step. This keeps the
    // stamped current and the accepted current identical, so KCL and the
    // energy bookkeeping stay consistent; the one-step lag is harmless at the
    // small steps the engine takes around write pulses.
    mna.stampCurrentSource(a_, b_, ipPrev_);
}

void FerroCap::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;  // sub-coercive small signal: only the background dielectric responds
    mna.stampCapacitance(a_, b_, linear_.capacitance());
}

void FerroCap::acceptStep(const spice::SimContext& ctx) {
    const double v = ctx.v(a_) - ctx.v(b_);
    const double il = linear_.accept(v, ctx);
    lastCurrent_ = il + ipPrev_;  // what the rest of the circuit saw this step
    energy_.add(lastCurrent_ * v, ctx.dt);

    // Advance polarization with the accepted voltage; its rate becomes the
    // explicit source for the next step.
    const double qs = area_ * bank_.params().ps;
    const double pBefore = bank_.pnorm();
    bank_.advance(v, ctx.dt);
    ipPrev_ = ctx.dt > 0.0 ? qs * (bank_.pnorm() - pBefore) / ctx.dt : 0.0;
}

void FerroCap::beginTransient(const spice::SimContext& ctx) {
    const double v = ctx.v(a_) - ctx.v(b_);
    linear_.reset(v);
    ipPrev_ = 0.0;
    energy_.reset();
    lastCurrent_ = 0.0;
}

}  // namespace fetcam::device
