// Ferroelectric polarization model.
//
// Classical scalar Preisach model realized as a bank of symmetric hysterons:
// hysteron i switches up above +vc_i and down below -vc_i, with coercive
// voltages vc_i spread by a Gaussian distribution. This reproduces the
// saturation loop shape, minor loops, history dependence and the Preisach
// wiping property without any curve-fitting hacks.
//
// Switching dynamics follow a Merz-law relaxation: above threshold a
// hysteron's state relaxes exponentially toward +/-1 with a voltage-dependent
// time constant tau(v) = tau0 * exp(kMerz * vc_i / |v|); far above the
// coercive voltage switching is fast, just above it is slow. Below threshold
// the state holds (non-volatility).
#pragma once

#include <vector>

#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace fetcam::device {

struct FerroParams {
    double ps = 0.23;          ///< saturation polarization [C/m^2] (HfZrO2-class)
    double vcMean = 1.2;       ///< mean gate-referred coercive voltage [V]
    double vcSigma = 0.25;     ///< coercive-voltage spread [V]
    double tau0 = 2e-9;        ///< Merz prefactor [s]
    double kMerz = 2.5;        ///< Merz exponent (dimensionless)
    double epsR = 28.0;        ///< background (non-switching) permittivity
    double thickness = 8e-9;   ///< ferroelectric film thickness [m]
    int numHysterons = 101;
    /// Zero-field depolarization time constant [s]. Calibrated so an
    /// HZO-class film loses ~10% polarization over the canonical 10-year
    /// retention spec (3.15e8 s): exp(-3.15e8/3e9) ~ 0.90.
    double tauRetention = 3.0e9;

    // Endurance (cycling) model: pristine films "wake up" over the first
    // ~1e4 cycles, then fatigue closes the window logarithmically.
    double pristineFactor = 0.93;   ///< fraction of full Ps before wake-up
    double wakeupCycles = 1e4;      ///< cycles to reach full polarization
    double fatigueOnsetCycles = 1e5;
    double fatiguePerDecade = 0.06; ///< Ps fraction lost per decade beyond onset
    double fatigueFloor = 0.3;

    /// Linear (background) capacitance per area [F/m^2].
    double linearCapPerArea() const;
};

/// Bank of relaxing hysterons; normalized polarization pnorm() in [-1, 1].
class PreisachBank {
public:
    explicit PreisachBank(const FerroParams& params);

    /// Set every hysteron to the same state (e.g. -1, 0, +1 or partial).
    void reset(double pnorm);

    /// Advance the bank by dt under applied voltage v.
    void advance(double v, double dt);

    /// Weighted mean state in [-1, 1].
    double pnorm() const;

    /// Quasi-static response: advance with a long dwell so every hysteron
    /// whose threshold is exceeded switches fully. Used for loop tracing.
    void settle(double v);

    /// Zero-field retention loss: every hysteron state decays toward 0 with
    /// the tauRetention time constant. Used by ageing studies; circuit-time
    /// steps (ns) make this negligible by construction.
    void relax(double seconds);

    /// Polarization availability after `cycles` program/erase cycles
    /// (wake-up then fatigue), in (0, 1]. Pure function of the parameters.
    double enduranceFactor(double cycles) const;

    /// Record accumulated cycling: pnorm() is scaled by enduranceFactor and
    /// future switching saturates at the reduced level.
    void setCyclingHistory(double cycles);
    double cyclingCycles() const { return cycles_; }

    const FerroParams& params() const { return params_; }

private:
    FerroParams params_;
    std::vector<double> vc_;      ///< per-hysteron coercive voltage (>0)
    std::vector<double> weight_;  ///< normalized Gaussian weights
    std::vector<double> state_;   ///< per-hysteron state in [-1, 1]
    double cycles_ = 0.0;         ///< accumulated program/erase cycles
    double endurance_ = 1.0;      ///< cached enduranceFactor(cycles_)
};

/// Two-terminal ferroelectric capacitor: background linear capacitance in
/// parallel with the Preisach polarization charge Qp = area * Ps * pnorm.
/// The polarization current is stepped explicitly (state at the start of the
/// step), which is stable for the small steps the transient engine takes
/// around write pulses.
class FerroCap : public spice::Device {
public:
    FerroCap(std::string name, spice::NodeId a, spice::NodeId b, FerroParams params,
             double area);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastCurrent_; }

    double pnorm() const { return bank_.pnorm(); }
    void setPolarization(double pnorm) { bank_.reset(pnorm); }
    double area() const { return area_; }
    /// Total charge at voltage v with the current polarization state.
    double charge(double v) const;

private:
    spice::NodeId a_, b_;
    PreisachBank bank_;
    double area_;
    spice::CompanionCap linear_;
    spice::EnergyIntegrator energy_;
    double lastCurrent_ = 0.0;
    double ipPrev_ = 0.0;  ///< committed polarization current for the next step
};

}  // namespace fetcam::device
