#include "device/reram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/ac.hpp"

namespace fetcam::device {

Reram::Reram(std::string name, spice::NodeId a, spice::NodeId b, ReramParams params,
             double initialState)
    : Device(std::move(name)), a_(a), b_(b), params_(params), w_(initialState),
      cPar_(params.cPar) {
    if (initialState < 0.0 || initialState > 1.0)
        throw std::invalid_argument("Reram: state must be in [0,1]");
}

void Reram::setState(double w) {
    if (w < 0.0 || w > 1.0) throw std::invalid_argument("Reram::setState: out of range");
    w_ = w;
}

double Reram::resistance() const {
    // Log-linear interpolation between HRS and LRS.
    return params_.rOff * std::pow(params_.rOn / params_.rOff, w_);
}

void Reram::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    mna.stampConductance(a_, b_, 1.0 / resistance());
    cPar_.stamp(mna, ctx, a_, b_);
}

void Reram::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;  // filament frozen at small signal
    mna.stampConductance(a_, b_, 1.0 / resistance());
    mna.stampCapacitance(a_, b_, cPar_.capacitance());
}

void Reram::acceptStep(const spice::SimContext& ctx) {
    const double v = ctx.v(a_) - ctx.v(b_);
    const double iR = v / resistance();
    const double iC = cPar_.accept(v, ctx);
    lastCurrent_ = iR + iC;
    energy_.add(v * lastCurrent_, ctx.dt);

    // Explicit filament dynamics with exponential voltage acceleration.
    if (ctx.dt > 0.0) {
        if (v > params_.vSet) {
            const double tau = params_.tauSet * std::exp(-(v - params_.vSet) / params_.vAccel);
            w_ += (1.0 - w_) * (1.0 - std::exp(-ctx.dt / tau));
        } else if (v < params_.vReset) {
            const double tau =
                params_.tauReset * std::exp(-(params_.vReset - v) / params_.vAccel);
            w_ += (0.0 - w_) * (1.0 - std::exp(-ctx.dt / tau));
        }
        w_ = std::clamp(w_, 0.0, 1.0);
    }
}

void Reram::beginTransient(const spice::SimContext& ctx) {
    cPar_.reset(ctx.v(a_) - ctx.v(b_));
    energy_.reset();
    lastCurrent_ = 0.0;
}

}  // namespace fetcam::device
