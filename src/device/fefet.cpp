#include "device/fefet.hpp"

#include "recover/fault_injection.hpp"
#include "spice/ac.hpp"

namespace fetcam::device {

FeFet::FeFet(std::string name, spice::NodeId g, spice::NodeId d, spice::NodeId s,
             FeFetParams params)
    : Device(std::move(name)), g_(g), d_(d), s_(s), params_(params), bank_(params.ferro),
      cgs_(params.mos.gateCap()), cgd_(params.mos.gateCap()),
      cdb_(params.mos.junctionCap()), csb_(params.mos.junctionCap()) {}

void FeFet::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    const double vg = ctx.v(g_);
    const double vd = ctx.v(d_);
    const double vs = ctx.v(s_);
    const MosEval e = ekvChannel(params_.mos, vg - vs, vd - vs, vtEff());

    mna.addNodeJacobian(d_, g_, e.gm);
    mna.addNodeJacobian(d_, d_, e.gds);
    mna.addNodeJacobian(d_, s_, -(e.gm + e.gds));
    mna.addNodeJacobian(s_, g_, -e.gm);
    mna.addNodeJacobian(s_, d_, -e.gds);
    mna.addNodeJacobian(s_, s_, e.gm + e.gds);
    const double ieq = e.id - e.gm * vg - e.gds * vd + (e.gm + e.gds) * vs;
    mna.stampCurrentSource(d_, s_, ieq);

    cgs_.stamp(mna, ctx, g_, s_);
    cgd_.stamp(mna, ctx, g_, d_);
    cdb_.stamp(mna, ctx, d_, spice::kGround);
    csb_.stamp(mna, ctx, s_, spice::kGround);

    // Explicit polarization displacement current into the gate.
    if (ctx.mode == spice::AnalysisMode::Transient && ctx.dt > 0.0)
        mna.stampCurrentSource(g_, s_, ipPrev_);
}

void FeFet::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    // Polarization is frozen at small signal (sub-coercive excitation): the
    // device is a MOSFET at VT_eff plus its (background) gate capacitances.
    const double vg = opCtx.v(g_);
    const double vd = opCtx.v(d_);
    const double vs = opCtx.v(s_);
    const MosEval e = ekvChannel(params_.mos, vg - vs, vd - vs, vtEff());
    mna.stampVccs(d_, s_, g_, s_, e.gm);
    mna.stampConductance(d_, s_, e.gds);
    mna.stampCapacitance(g_, s_, cgs_.capacitance());
    mna.stampCapacitance(g_, d_, cgd_.capacitance());
    mna.stampCapacitance(d_, spice::kGround, cdb_.capacitance());
    mna.stampCapacitance(s_, spice::kGround, csb_.capacitance());
}

void FeFet::acceptStep(const spice::SimContext& ctx) {
    const double vg = ctx.v(g_);
    const double vd = ctx.v(d_);
    const double vs = ctx.v(s_);
    const MosEval e = ekvChannel(params_.mos, vg - vs, vd - vs, vtEff());
    lastId_ = e.id;

    double power = e.id * (vd - vs);
    power += cgs_.accept(vg - vs, ctx) * (vg - vs);
    power += cgd_.accept(vg - vd, ctx) * (vg - vd);
    power += cdb_.accept(vd, ctx) * vd;
    power += csb_.accept(vs, ctx) * vs;
    power += ipPrev_ * (vg - vs);  // polarization-switching energy
    energy_.add(power, ctx.dt);

    // Advance the hysteron bank with the accepted gate-source voltage.
    // A stuck-polarization fault freezes the bank: no switching, no Ip.
    if (recover::FaultPlan* plan = recover::FaultPlan::active();
        plan && plan->stuckPolarization()) {
        ipPrev_ = 0.0;
        return;
    }
    const double qs = params_.effectiveFeArea() * params_.ferro.ps;
    const double pBefore = bank_.pnorm();
    bank_.advance(vg - vs, ctx.dt);
    ipPrev_ = ctx.dt > 0.0 ? qs * (bank_.pnorm() - pBefore) / ctx.dt : 0.0;
}

void FeFet::beginTransient(const spice::SimContext& ctx) {
    const double vg = ctx.v(g_);
    const double vd = ctx.v(d_);
    const double vs = ctx.v(s_);
    cgs_.reset(vg - vs);
    cgd_.reset(vg - vd);
    cdb_.reset(vd);
    csb_.reset(vs);
    energy_.reset();
    lastId_ = 0.0;
    ipPrev_ = 0.0;
}

}  // namespace fetcam::device
