// Linear passive elements.
#pragma once

#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace fetcam::device {

class Resistor : public spice::Device {
public:
    Resistor(std::string name, spice::NodeId a, spice::NodeId b, double resistance);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastCurrent_; }
    double resistance() const { return r_; }

private:
    spice::NodeId a_, b_;
    double r_;
    spice::EnergyIntegrator energy_;
    double lastCurrent_ = 0.0;
};

/// Linear capacitor. energy() is the absorbed energy since the start of the
/// transient (equals the change in stored energy: lossless element).
class Capacitor : public spice::Device {
public:
    Capacitor(std::string name, spice::NodeId a, spice::NodeId b, double capacitance);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastCurrent_; }
    double capacitance() const { return cap_.capacitance(); }
    /// Instantaneous stored energy 0.5*C*V^2 at the last accepted point.
    double storedEnergy() const { return 0.5 * cap_.capacitance() * vLast_ * vLast_; }

private:
    spice::NodeId a_, b_;
    spice::CompanionCap cap_;
    spice::EnergyIntegrator energy_;
    double lastCurrent_ = 0.0;
    double vLast_ = 0.0;
};

}  // namespace fetcam::device
