#include "device/tech.hpp"

#include <cmath>
#include <stdexcept>

namespace fetcam::device {

MosfetParams TechCard::sizedNmos(double widthMultiple) const {
    MosfetParams p = nmos;
    p.w = nmos.w * widthMultiple;
    return p;
}

MosfetParams TechCard::sizedPmos(double widthMultiple) const {
    MosfetParams p = pmos;
    p.w = pmos.w * widthMultiple;
    return p;
}

TechCard TechCard::atTemperature(double kelvin) const {
    if (kelvin <= 0.0) throw std::invalid_argument("TechCard::atTemperature: bad T");
    if (std::abs(temperatureK - 300.0) > 1e-9)
        throw std::logic_error("TechCard::atTemperature: derive from the 300 K card");
    TechCard t = *this;
    t.temperatureK = kelvin;
    const double dT = kelvin - 300.0;
    const double mobility = std::pow(kelvin / 300.0, -1.5);

    auto adjustMos = [&](MosfetParams& m) {
        m.ut = 0.02585 * kelvin / 300.0;
        m.vt0 = std::max(0.05, m.vt0 - 1.0e-3 * dT);  // |VT| drift, both types
        m.kp *= mobility;
    };
    adjustMos(t.nmos);
    adjustMos(t.pmos);
    adjustMos(t.fefet.mos);

    // Ferroelectric softening with temperature (approach to Curie point).
    t.fefet.ferro.vcMean *= std::max(0.5, 1.0 - 1.0e-3 * dT);
    t.fefet.ferro.ps *= std::max(0.5, 1.0 - 0.5e-3 * dT);
    t.fefet.ferro.tau0 *= std::exp(-dT / 150.0);  // thermally assisted switching

    // ReRAM: thermally activated filament dynamics; HRS leakage grows.
    t.reram.tauSet *= std::exp(-dT / 100.0);
    t.reram.tauReset *= std::exp(-dT / 100.0);
    t.reram.rOff *= std::exp(-dT / 120.0);
    return t;
}

TechCard TechCard::atCorner(Corner corner) const {
    TechCard t = *this;
    const double dVt = 0.030;
    const double mobility = 0.10;
    auto fast = [&](MosfetParams& m) {
        m.vt0 = std::max(0.05, m.vt0 - dVt);
        m.kp *= 1.0 + mobility;
    };
    auto slow = [&](MosfetParams& m) {
        m.vt0 += dVt;
        m.kp *= 1.0 - mobility;
    };
    switch (corner) {
        case Corner::TT: break;
        case Corner::FF:
            fast(t.nmos);
            fast(t.pmos);
            fast(t.fefet.mos);
            break;
        case Corner::SS:
            slow(t.nmos);
            slow(t.pmos);
            slow(t.fefet.mos);
            break;
        case Corner::FS:
            fast(t.nmos);
            slow(t.pmos);
            fast(t.fefet.mos);
            break;
        case Corner::SF:
            slow(t.nmos);
            fast(t.pmos);
            slow(t.fefet.mos);
            break;
    }
    return t;
}

TechCard TechCard::cmos45() {
    TechCard t;

    t.nmos.type = MosType::Nmos;
    t.nmos.w = 90e-9;
    t.nmos.l = 45e-9;
    t.nmos.vt0 = 0.40;
    t.nmos.kp = 4.0e-4;
    t.nmos.n = 1.35;
    t.nmos.lambda = 0.15;

    t.pmos = t.nmos;
    t.pmos.type = MosType::Pmos;
    t.pmos.w = 135e-9;   // ~1.5x for drive balance
    t.pmos.vt0 = 0.40;
    t.pmos.kp = 1.7e-4;  // hole mobility penalty

    // FeFET: n-type channel, HfZrO2 gate stack, ~1.1 V memory window.
    t.fefet.mos = t.nmos;
    t.fefet.mos.w = 120e-9;      // slightly wider for matchline drive
    t.fefet.mos.vt0 = 0.70;      // mid VT: VT_low = 0.15 V, VT_high = 1.25 V
    t.fefet.deltaVt = 0.55;
    t.fefet.ferro.ps = 0.23;
    t.fefet.ferro.vcMean = 1.45; // gate-referred; with the +/-3 sigma hysteron
    t.fefet.ferro.vcSigma = 0.13;// grid the lowest Vc is 1.06 V > VDD: search-safe
    t.fefet.ferro.tau0 = 2e-9;
    t.fefet.ferro.kMerz = 2.5;
    t.fefet.ferro.thickness = 8e-9;
    t.fefet.ferro.epsR = 28.0;

    t.reram = ReramParams{};

    return t;
}

}  // namespace fetcam::device
