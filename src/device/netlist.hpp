// SPICE-like netlist text format: parse into a Circuit, and describe a
// Circuit back as text. Lets tests and users define circuits in files
// instead of C++, and makes simulator state inspectable.
//
// Grammar (one element per line; '*' or ';' start comments; case-insensitive
// element letters and keywords; node names are free-form tokens, "0"/"gnd"
// is ground):
//
//   R<name> a b <ohms>
//   C<name> a b <farads>
//   V<name> p n DC <volts>
//   V<name> p n PULSE <v0> <v1> <tdelay> <trise> <tfall> <twidth> [tperiod]
//   V<name> p n PWL <t0> <v0> <t1> <v1> ...
//   I<name> from to DC <amps>              (current flows from -> to)
//   M<name> g d s NMOS|PMOS [W=<mult>]     (width as multiple of minimum)
//   F<name> g d s [P=<pnorm>]              (FeFET, tech-card parameters)
//   X<name> a b FERRO [AREA=<m^2>] [P=<pnorm>]   (ferroelectric capacitor)
//   Y<name> a b RERAM [W=<state>]          (bipolar ReRAM, state in [0,1])
//
// Numeric literals accept SPICE magnitude suffixes: f p n u m k meg g t
// (e.g. "10k", "100f", "4.5meg").
#pragma once

#include <string>

#include "device/tech.hpp"
#include "spice/circuit.hpp"

namespace fetcam::device {

/// Parse a numeric literal with SPICE magnitude suffixes. Throws
/// std::invalid_argument on malformed input.
double parseSpiceNumber(const std::string& token);

/// Parse a netlist into `circuit`, using `tech` for M/F/X/Y parameters.
/// Returns the number of elements created. Throws std::invalid_argument with
/// a line-numbered message on any syntax error.
int parseNetlist(const std::string& text, spice::Circuit& circuit, const TechCard& tech);

/// One-line-per-element inventory of a circuit (for diagnostics; waveforms
/// and full device parameters are summarized, not round-tripped).
std::string describeCircuit(const spice::Circuit& circuit);

}  // namespace fetcam::device
