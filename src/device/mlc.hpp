// Multi-level-cell (MLC) FeFET state ladder.
//
// A FeFET stores analog remanent polarization, not just the two saturated
// states: partial program pulses park the Preisach bank at intermediate
// pnorm values, each of which shifts the effective threshold by
// VT_eff = VT_mid - deltaVt * pnorm (see fefet.hpp). SEE-MCAM and the
// multi-bit FeFET CAM literature exploit exactly this — N evenly spaced
// polarization targets give an N-state (log2(N) bits) cell whose memory
// window 2*deltaVt is divided into N-1 VT steps.
//
// This module is the *device-side* truth for that ladder: which pnorm
// targets encode which level, and what VT separation (the raw material of
// the sense margin) survives the subdivision. The array/serving-side
// characterization (sim::characterizeMlc) builds on these numbers; the
// functional similarity queries never consult them — level placement is
// electrical costing, not match semantics.
#pragma once

#include <vector>

#include "device/fefet.hpp"

namespace fetcam::device {

/// Densest ladder the model admits: 4 bits/cell = 16 states. Beyond this
/// the per-step VT separation of a realistic window (~1.1 V) falls under
/// typical VT variation and the cell stops being sensable.
inline constexpr int kMaxMlcBitsPerCell = 4;

struct MlcLevels {
    int statesPerCell = 2;
    /// Polarization target per level, ascending: pnorm[0] = -1 (high-VT,
    /// level 0) ... pnorm[N-1] = +1 (low-VT, level N-1).
    std::vector<double> pnorm;
    /// Effective threshold per level (descending in level index):
    /// vt[i] = vt0 - deltaVt * pnorm[i].
    std::vector<double> vt;
    /// VT separation between adjacent levels: 2*deltaVt / (N-1) [V].
    double vtStepV = 0.0;
    /// Full memory window 2*deltaVt [V].
    double windowV = 0.0;
};

/// The evenly spaced N-state ladder for a FeFET. Throws
/// SimError(InvalidSpec) unless 2 <= statesPerCell <= 2^kMaxMlcBitsPerCell
/// and the device has a positive memory window.
MlcLevels mlcLevels(const FeFetParams& params, int statesPerCell);

}  // namespace fetcam::device
