#include "device/sources.hpp"

#include <cmath>
#include <stdexcept>

#include "spice/ac.hpp"

namespace fetcam::device {

SourceWave SourceWave::dc(double value) {
    SourceWave w;
    w.kind_ = Kind::Dc;
    w.dc_ = value;
    return w;
}

SourceWave SourceWave::pulse(double v0, double v1, double tDelay, double tRise, double tFall,
                             double tWidth, double tPeriod) {
    if (tRise <= 0.0 || tFall <= 0.0)
        throw std::invalid_argument("SourceWave::pulse: rise/fall must be > 0");
    SourceWave w;
    w.kind_ = Kind::Pulse;
    w.v0_ = v0;
    w.v1_ = v1;
    w.tDelay_ = tDelay;
    w.tRise_ = tRise;
    w.tFall_ = tFall;
    w.tWidth_ = tWidth;
    w.tPeriod_ = tPeriod;
    return w;
}

SourceWave SourceWave::pwl(std::vector<double> times, std::vector<double> values) {
    SourceWave w;
    w.kind_ = Kind::Pwl;
    w.pwl_ = numeric::PiecewiseLinear(std::move(times), std::move(values));
    return w;
}

double SourceWave::at(double t) const {
    switch (kind_) {
        case Kind::Dc:
            return dc_;
        case Kind::Pwl:
            return pwl_(t);
        case Kind::Pulse: {
            double tt = t - tDelay_;
            if (tt < 0.0) return v0_;
            if (tPeriod_ > 0.0) tt = std::fmod(tt, tPeriod_);
            if (tt < tRise_) return v0_ + (v1_ - v0_) * (tt / tRise_);
            tt -= tRise_;
            if (tt < tWidth_) return v1_;
            tt -= tWidth_;
            if (tt < tFall_) return v1_ + (v0_ - v1_) * (tt / tFall_);
            return v0_;
        }
    }
    return 0.0;
}

void SourceWave::collectBreakpoints(double tstop, std::vector<double>& bps) const {
    auto push = [&](double t) {
        if (t > 0.0 && t <= tstop) bps.push_back(t);
    };
    switch (kind_) {
        case Kind::Dc:
            break;
        case Kind::Pwl:
            for (double t : pwl_.xs()) push(t);
            break;
        case Kind::Pulse: {
            const double cycle = tRise_ + tWidth_ + tFall_;
            const double period = tPeriod_ > 0.0 ? tPeriod_ : tstop + cycle + 1.0;
            for (double base = tDelay_; base <= tstop; base += period) {
                push(base);
                push(base + tRise_);
                push(base + tRise_ + tWidth_);
                push(base + cycle);
                if (tPeriod_ <= 0.0) break;
            }
            break;
        }
    }
}

VoltageSource::VoltageSource(std::string name, spice::Circuit& circuit, spice::NodeId p,
                             spice::NodeId n, SourceWave wave)
    : Device(std::move(name)), p_(p), n_(n), branch_(circuit.allocateBranch()),
      wave_(std::move(wave)) {}

void VoltageSource::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    mna.stampVoltageSource(p_, n_, branch_, ctx.sourceScale * wave_.at(ctx.time));
}

void VoltageSource::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;
    // Ideal source: an AC short with its own (possibly zero) stimulus.
    mna.stampVoltageSource(p_, n_, branch_, acMagnitude_);
}

void VoltageSource::acceptStep(const spice::SimContext& ctx) {
    // Branch current is defined flowing p -> (through source) -> n, so it
    // enters the + terminal: passive-sign absorbed power is v*(i).
    const double v = ctx.v(p_) - ctx.v(n_);
    lastCurrent_ = ctx.branchCurrent(branch_);
    energy_.add(v * lastCurrent_, ctx.dt);
}

void VoltageSource::beginTransient(const spice::SimContext& ctx) {
    (void)ctx;
    energy_.reset();
    lastCurrent_ = 0.0;
}

void VoltageSource::collectBreakpoints(double tstop, std::vector<double>& bps) const {
    wave_.collectBreakpoints(tstop, bps);
}

CurrentSource::CurrentSource(std::string name, spice::NodeId from, spice::NodeId to,
                             SourceWave wave)
    : Device(std::move(name)), from_(from), to_(to), wave_(std::move(wave)) {}

void CurrentSource::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    mna.stampCurrentSource(from_, to_, ctx.sourceScale * wave_.at(ctx.time));
}

void CurrentSource::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;
    if (acMagnitude_ != 0.0) mna.stampCurrentSource(from_, to_, acMagnitude_);
}

void CurrentSource::acceptStep(const spice::SimContext& ctx) {
    lastCurrent_ = ctx.sourceScale * wave_.at(ctx.time);
    const double v = ctx.v(from_) - ctx.v(to_);
    energy_.add(v * lastCurrent_, ctx.dt);
}

void CurrentSource::beginTransient(const spice::SimContext& ctx) {
    (void)ctx;
    energy_.reset();
    lastCurrent_ = 0.0;
}

void CurrentSource::collectBreakpoints(double tstop, std::vector<double>& bps) const {
    wave_.collectBreakpoints(tstop, bps);
}

}  // namespace fetcam::device
