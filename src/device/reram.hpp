// Bipolar resistive RAM (memristive) element.
//
// Filament state w in [0, 1] maps log-linearly between rOff (w=0, HRS) and
// rOn (w=1, LRS). SET (w -> 1) above +vSet, RESET (w -> 0) below vReset,
// with exponential voltage acceleration; below threshold the state holds,
// so logic-level read/search voltages are non-destructive. Conductance is
// frozen at the step-start state (explicit state integration), which keeps
// Newton iterations linear in this element.
#pragma once

#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace fetcam::device {

struct ReramParams {
    double rOn = 10e3;        ///< low-resistance state [ohm]
    double rOff = 10e6;       ///< high-resistance state [ohm] (HRS leakage
                              ///< through rOff is what limits 2T2R word width)
    double vSet = 1.6;        ///< SET threshold [V]
    double vReset = -1.6;     ///< RESET threshold [V] (negative)
    double tauSet = 5e-9;     ///< base SET time constant [s]
    double tauReset = 10e-9;  ///< base RESET time constant [s]
    double vAccel = 0.25;     ///< exponential voltage acceleration [V]
    double cPar = 0.2e-15;    ///< electrode parasitic capacitance [F]
};

class Reram : public spice::Device {
public:
    Reram(std::string name, spice::NodeId a, spice::NodeId b, ReramParams params,
          double initialState = 0.0);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastCurrent_; }

    double state() const { return w_; }
    void setState(double w);
    void setLrs() { setState(1.0); }
    void setHrs() { setState(0.0); }
    double resistance() const;

private:
    spice::NodeId a_, b_;
    ReramParams params_;
    double w_;
    spice::CompanionCap cPar_;
    spice::EnergyIntegrator energy_;
    double lastCurrent_ = 0.0;
};

}  // namespace fetcam::device
