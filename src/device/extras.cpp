#include "device/extras.hpp"

#include <stdexcept>

#include "spice/ac.hpp"

namespace fetcam::device {

Inductor::Inductor(std::string name, spice::Circuit& circuit, spice::NodeId a,
                   spice::NodeId b, double inductance)
    : Device(std::move(name)), a_(a), b_(b), branch_(circuit.allocateBranch()),
      l_(inductance) {
    if (inductance <= 0.0) throw std::invalid_argument("Inductor: inductance must be > 0");
}

void Inductor::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    const int br = mna.branchIndex(branch_);
    // KCL coupling: branch current leaves a, enters b.
    if (a_ != spice::kGround) {
        mna.addRawJacobian(a_ - 1, br, 1.0);
        mna.addRawJacobian(br, a_ - 1, 1.0);
    }
    if (b_ != spice::kGround) {
        mna.addRawJacobian(b_ - 1, br, -1.0);
        mna.addRawJacobian(br, b_ - 1, -1.0);
    }
    if (ctx.mode == spice::AnalysisMode::Dc || ctx.dt <= 0.0) {
        // DC: ideal short, v(a)-v(b) = 0. (Row already has the voltage terms.)
        return;
    }
    if (ctx.method == spice::IntegrationMethod::Trapezoidal) {
        const double req = 2.0 * l_ / ctx.dt;
        mna.addRawJacobian(br, br, -req);
        mna.addRawRhs(br, -vPrev_ - req * iPrev_);
    } else {
        const double req = l_ / ctx.dt;
        mna.addRawJacobian(br, br, -req);
        mna.addRawRhs(br, -req * iPrev_);
    }
}

void Inductor::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;
    const int br = mna.branchIndex(branch_);
    mna.addRawJacobian(mna.nodeUnknown(a_), br, 1.0);
    mna.addRawJacobian(br, mna.nodeUnknown(a_), 1.0);
    mna.addRawJacobian(mna.nodeUnknown(b_), br, -1.0);
    mna.addRawJacobian(br, mna.nodeUnknown(b_), -1.0);
    mna.addRawJacobian(br, br, numeric::Complex{0.0, -mna.omega() * l_});
}

void Inductor::acceptStep(const spice::SimContext& ctx) {
    iPrev_ = ctx.branchCurrent(branch_);
    vPrev_ = ctx.v(a_) - ctx.v(b_);
    energy_.add(vPrev_ * iPrev_, ctx.dt);
}

void Inductor::beginTransient(const spice::SimContext& ctx) {
    (void)ctx;
    iPrev_ = 0.0;
    vPrev_ = 0.0;
    energy_.reset();
}

Vcvs::Vcvs(std::string name, spice::Circuit& circuit, spice::NodeId p, spice::NodeId n,
           spice::NodeId cp, spice::NodeId cn, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn),
      branch_(circuit.allocateBranch()), gain_(gain) {}

void Vcvs::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    (void)ctx;
    const int br = mna.branchIndex(branch_);
    // v(p) - v(n) - gain*(v(cp) - v(cn)) = 0, branch current into KCL rows.
    if (p_ != spice::kGround) {
        mna.addRawJacobian(p_ - 1, br, 1.0);
        mna.addRawJacobian(br, p_ - 1, 1.0);
    }
    if (n_ != spice::kGround) {
        mna.addRawJacobian(n_ - 1, br, -1.0);
        mna.addRawJacobian(br, n_ - 1, -1.0);
    }
    if (cp_ != spice::kGround) mna.addRawJacobian(br, cp_ - 1, -gain_);
    if (cn_ != spice::kGround) mna.addRawJacobian(br, cn_ - 1, gain_);
}

void Vcvs::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;
    const int br = mna.branchIndex(branch_);
    mna.addRawJacobian(mna.nodeUnknown(p_), br, 1.0);
    mna.addRawJacobian(br, mna.nodeUnknown(p_), 1.0);
    mna.addRawJacobian(mna.nodeUnknown(n_), br, -1.0);
    mna.addRawJacobian(br, mna.nodeUnknown(n_), -1.0);
    mna.addRawJacobian(br, mna.nodeUnknown(cp_), -gain_);
    mna.addRawJacobian(br, mna.nodeUnknown(cn_), gain_);
}

void Vcvs::acceptStep(const spice::SimContext& ctx) {
    lastCurrent_ = ctx.branchCurrent(branch_);
    energy_.add((ctx.v(p_) - ctx.v(n_)) * lastCurrent_, ctx.dt);
}

void Vcvs::beginTransient(const spice::SimContext& ctx) {
    (void)ctx;
    lastCurrent_ = 0.0;
    energy_.reset();
}

Vccs::Vccs(std::string name, spice::NodeId p, spice::NodeId n, spice::NodeId cp,
           spice::NodeId cn, double transconductance)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(transconductance) {}

void Vccs::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    (void)ctx;
    mna.stampVccs(p_, n_, cp_, cn_, gm_);
}

void Vccs::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;
    mna.stampVccs(p_, n_, cp_, cn_, gm_);
}

void Vccs::acceptStep(const spice::SimContext& ctx) {
    lastCurrent_ = gm_ * (ctx.v(cp_) - ctx.v(cn_));
    energy_.add((ctx.v(p_) - ctx.v(n_)) * lastCurrent_, ctx.dt);
}

void Vccs::beginTransient(const spice::SimContext& ctx) {
    (void)ctx;
    lastCurrent_ = 0.0;
    energy_.reset();
}

}  // namespace fetcam::device
