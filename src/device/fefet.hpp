// FeFET: ferroelectric-gate field-effect transistor.
//
// Modelled as an n-type EKV channel whose effective threshold voltage is
// shifted by the normalized remanent polarization of a Preisach hysteron
// bank in the gate stack:
//
//     VT_eff = VT_mid - deltaVt * pnorm,     pnorm in [-1, 1]
//
// pnorm = +1 (programmed "low-VT" / erased) makes the device conduct at
// logic-level gate voltages; pnorm = -1 ("high-VT") keeps it off. The
// memory window is 2*deltaVt. The hysteron bank sees the gate-source
// voltage (gate-referred coercive voltage), so logic-level search pulses
// (|Vgs| <= VDD < Vc) never disturb the stored state, while +/-Vwrite gate
// pulses switch it with Merz-law dynamics.
//
// Polarization switching also injects a gate charge Qp = area * Ps * pnorm;
// its current is stepped explicitly like FerroCap's, which is what makes
// FeFET *write* energy visible to the energy probes.
#pragma once

#include "device/ferro.hpp"
#include "device/mosfet.hpp"
#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace fetcam::device {

struct FeFetParams {
    MosfetParams mos;     ///< underlying transistor; mos.vt0 is the mid VT
    FerroParams ferro;    ///< gate-stack hysteresis
    double deltaVt = 0.55;///< VT shift per unit pnorm -> memory window 1.1 V
    double feArea = 0.0;  ///< ferroelectric area [m^2]; 0 -> W*L

    double effectiveFeArea() const { return feArea > 0.0 ? feArea : mos.w * mos.l; }
    double vtLow() const { return mos.vt0 - deltaVt; }
    double vtHigh() const { return mos.vt0 + deltaVt; }
};

class FeFet : public spice::Device {
public:
    FeFet(std::string name, spice::NodeId g, spice::NodeId d, spice::NodeId s,
          FeFetParams params);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastId_; }

    /// Normalized polarization in [-1, 1].
    double pnorm() const { return bank_.pnorm(); }
    /// Directly set the stored state (models a completed write; tests and
    /// array builders use this, the write sequencer drives real pulses).
    void setPolarization(double pnorm) { bank_.reset(pnorm); }
    /// Effective threshold at the current polarization.
    double vtEff() const { return params_.mos.vt0 - params_.deltaVt * bank_.pnorm(); }

    /// Retention ageing: depolarize the stored state by `seconds` of
    /// zero-field dwell (see PreisachBank::relax).
    void ageBy(double seconds) { bank_.relax(seconds); }

    /// Endurance: record `cycles` accumulated program/erase cycles (wake-up
    /// then fatigue scaling of the available polarization).
    void setCyclingHistory(double cycles) { bank_.setCyclingHistory(cycles); }
    double enduranceFactor(double cycles) const { return bank_.enduranceFactor(cycles); }

    const FeFetParams& params() const { return params_; }

private:
    spice::NodeId g_, d_, s_;
    FeFetParams params_;
    PreisachBank bank_;
    spice::CompanionCap cgs_, cgd_, cdb_, csb_;
    spice::EnergyIntegrator energy_;
    double lastId_ = 0.0;
    double ipPrev_ = 0.0;  ///< committed polarization gate current
};

}  // namespace fetcam::device
