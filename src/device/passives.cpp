#include "device/passives.hpp"

#include <stdexcept>

#include "spice/ac.hpp"

namespace fetcam::device {

Resistor::Resistor(std::string name, spice::NodeId a, spice::NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), r_(resistance) {
    if (resistance <= 0.0) throw std::invalid_argument("Resistor: resistance must be > 0");
}

void Resistor::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    (void)ctx;
    mna.stampConductance(a_, b_, 1.0 / r_);
}

void Resistor::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;
    mna.stampConductance(a_, b_, 1.0 / r_);
}

void Resistor::acceptStep(const spice::SimContext& ctx) {
    const double v = ctx.v(a_) - ctx.v(b_);
    lastCurrent_ = v / r_;
    energy_.add(v * lastCurrent_, ctx.dt);
}

void Resistor::beginTransient(const spice::SimContext& ctx) {
    (void)ctx;
    energy_.reset();
    lastCurrent_ = 0.0;
}

Capacitor::Capacitor(std::string name, spice::NodeId a, spice::NodeId b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), cap_(capacitance) {
    if (capacitance < 0.0) throw std::invalid_argument("Capacitor: capacitance must be >= 0");
}

void Capacitor::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    cap_.stamp(mna, ctx, a_, b_);
}

void Capacitor::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    (void)opCtx;
    mna.stampCapacitance(a_, b_, cap_.capacitance());
}

void Capacitor::acceptStep(const spice::SimContext& ctx) {
    const double v = ctx.v(a_) - ctx.v(b_);
    lastCurrent_ = cap_.accept(v, ctx);
    vLast_ = v;
    energy_.add(v * lastCurrent_, ctx.dt);
}

void Capacitor::beginTransient(const spice::SimContext& ctx) {
    const double v = ctx.v(a_) - ctx.v(b_);
    cap_.reset(v);
    vLast_ = v;
    lastCurrent_ = 0.0;
    energy_.reset();
}

}  // namespace fetcam::device
