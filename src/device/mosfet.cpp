#include "device/mosfet.hpp"

#include <cmath>

#include "spice/ac.hpp"

namespace fetcam::device {

namespace {

/// Numerically stable softplus ln(1+e^u) and logistic sigmoid.
double softplus(double u) {
    if (u > 34.0) return u;
    if (u < -34.0) return std::exp(u);
    return std::log1p(std::exp(u));
}

double sigmoid(double u) {
    if (u > 34.0) return 1.0;
    if (u < -34.0) return std::exp(u);
    return 1.0 / (1.0 + std::exp(-u));
}

}  // namespace

MosEval ekvChannel(const MosfetParams& p, double vgs, double vds, double vtEff) {
    // EKV interpolation: Id = Is * (if - ir) * (1 + lambda*vds), with
    //   if = ln(1+exp((vp      )/(2*Ut)))^2,  ir = ln(1+exp((vp - vds)/(2*Ut)))^2,
    //   vp = (vgs - VT)/n   (pinch-off voltage, source-referenced).
    const double is = p.specificCurrent();
    const double vp = (vgs - vtEff) / p.n;
    const double twoUt = 2.0 * p.ut;

    const double uF = vp / twoUt;
    const double uR = (vp - vds) / twoUt;
    const double fF = softplus(uF);
    const double fR = softplus(uR);
    const double sF = sigmoid(uF);
    const double sR = sigmoid(uR);

    const double iF = fF * fF;
    const double iR = fR * fR;
    const double clm = 1.0 + p.lambda * vds;

    MosEval e;
    e.id = is * (iF - iR) * clm;
    // d(if)/d(vp) = 2*fF*sF/(2Ut) = fF*sF/Ut ; same shape for ir.
    const double diF = fF * sF / p.ut;
    const double diR = fR * sR / p.ut;
    e.gm = is * clm * (diF - diR) / p.n;
    e.gds = is * clm * diR + is * (iF - iR) * p.lambda;
    return e;
}

Mosfet::Mosfet(std::string name, spice::NodeId g, spice::NodeId d, spice::NodeId s,
               MosfetParams params)
    : Device(std::move(name)), g_(g), d_(d), s_(s), params_(params),
      cgs_(params.gateCap()), cgd_(params.gateCap()), cdb_(params.junctionCap()),
      csb_(params.junctionCap()) {}

MosEval Mosfet::evaluate(const spice::SimContext& ctx) const {
    const double vg = ctx.v(g_);
    const double vd = ctx.v(d_);
    const double vs = ctx.v(s_);
    if (params_.type == MosType::Nmos) return ekvChannel(params_, vg - vs, vd - vs, params_.vt0);
    // PMOS: mirror voltages into N-space, then negate the current.
    MosEval e = ekvChannel(params_, vs - vg, vs - vd, params_.vt0);
    e.id = -e.id;  // drain->source current flips sign; conductances stay positive
    return e;
}

void Mosfet::stamp(spice::Mna& mna, const spice::SimContext& ctx) {
    const double vg = ctx.v(g_);
    const double vd = ctx.v(d_);
    const double vs = ctx.v(s_);
    const MosEval e = evaluate(ctx);

    // Linearized channel: id(v) ~ id0 + gm*dvg + gds*dvd - (gm+gds)*dvs.
    // (For PMOS the mirrored evaluation already folds the sign of gm/gds into
    // the same node-space form: d(id)/d(vg) = gm holds in both cases because
    // both the current and the controlling voltages were negated.)
    mna.addNodeJacobian(d_, g_, e.gm);
    mna.addNodeJacobian(d_, d_, e.gds);
    mna.addNodeJacobian(d_, s_, -(e.gm + e.gds));
    mna.addNodeJacobian(s_, g_, -e.gm);
    mna.addNodeJacobian(s_, d_, -e.gds);
    mna.addNodeJacobian(s_, s_, e.gm + e.gds);
    const double ieq = e.id - e.gm * vg - e.gds * vd + (e.gm + e.gds) * vs;
    mna.stampCurrentSource(d_, s_, ieq);

    cgs_.stamp(mna, ctx, g_, s_);
    cgd_.stamp(mna, ctx, g_, d_);
    cdb_.stamp(mna, ctx, d_, spice::kGround);
    csb_.stamp(mna, ctx, s_, spice::kGround);
}

void Mosfet::stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const {
    const MosEval e = evaluate(opCtx);
    // Channel: gm from the gate, gds across d-s, source terms by KCL.
    mna.stampVccs(d_, s_, g_, s_, e.gm);
    mna.stampConductance(d_, s_, e.gds);
    mna.stampCapacitance(g_, s_, cgs_.capacitance());
    mna.stampCapacitance(g_, d_, cgd_.capacitance());
    mna.stampCapacitance(d_, spice::kGround, cdb_.capacitance());
    mna.stampCapacitance(s_, spice::kGround, csb_.capacitance());
}

void Mosfet::acceptStep(const spice::SimContext& ctx) {
    const double vg = ctx.v(g_);
    const double vd = ctx.v(d_);
    const double vs = ctx.v(s_);
    const MosEval e = evaluate(ctx);
    lastId_ = e.id;

    double power = e.id * (vd - vs);  // channel dissipation
    power += cgs_.accept(vg - vs, ctx) * (vg - vs);
    power += cgd_.accept(vg - vd, ctx) * (vg - vd);
    power += cdb_.accept(vd, ctx) * vd;
    power += csb_.accept(vs, ctx) * vs;
    energy_.add(power, ctx.dt);
}

void Mosfet::beginTransient(const spice::SimContext& ctx) {
    const double vg = ctx.v(g_);
    const double vd = ctx.v(d_);
    const double vs = ctx.v(s_);
    cgs_.reset(vg - vs);
    cgd_.reset(vg - vd);
    cdb_.reset(vd);
    csb_.reset(vs);
    energy_.reset();
    lastId_ = 0.0;
}

}  // namespace fetcam::device
