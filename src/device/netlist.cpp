#include "device/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "device/extras.hpp"
#include "device/fefet.hpp"
#include "device/ferro.hpp"
#include "device/mosfet.hpp"
#include "device/passives.hpp"
#include "device/reram.hpp"
#include "device/sources.hpp"

namespace fetcam::device {

namespace {

std::string lowered(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) {
        if (tok[0] == '*' || tok[0] == ';') break;  // trailing comment
        out.push_back(tok);
    }
    return out;
}

[[noreturn]] void fail(int lineNo, const std::string& what) {
    throw std::invalid_argument("netlist line " + std::to_string(lineNo) + ": " + what);
}

bool isOption(const std::string& token) { return token.find('=') != std::string::npos; }

double optionValue(const std::vector<std::string>& tokens, std::size_t from,
                   const std::string& key, double fallback) {
    for (std::size_t i = from; i < tokens.size(); ++i) {
        const auto t = lowered(tokens[i]);
        const auto eq = t.find('=');
        if (eq == std::string::npos) continue;
        if (t.substr(0, eq) == key) return parseSpiceNumber(t.substr(eq + 1));
    }
    return fallback;
}

void checkOptionKeys(const std::vector<std::string>& tokens, std::size_t from,
                     const std::vector<std::string>& allowed, int lineNo) {
    for (std::size_t i = from; i < tokens.size(); ++i) {
        const auto t = lowered(tokens[i]);
        const auto eq = t.find('=');
        if (eq == std::string::npos) fail(lineNo, "expected key=value option, got '" + t + "'");
        const auto key = t.substr(0, eq);
        if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
            fail(lineNo, "unknown option '" + key + "'");
    }
}

struct SourceLine {
    int lineNo;
    std::vector<std::string> tokens;
};

struct Subcircuit {
    std::vector<std::string> ports;  // local port node names
    std::vector<SourceLine> body;
};

/// Parser state shared across subcircuit expansion.
struct ParseState {
    spice::Circuit& circuit;
    const TechCard& tech;
    std::map<std::string, Subcircuit> subcircuits;
    int created = 0;
    int depth = 0;
};

/// Map a local node name through the instantiation scope.
/// Ports map to outer nodes; other names get the instance prefix.
std::string mapNode(const std::string& raw, const std::map<std::string, std::string>& scope,
                    const std::string& prefix) {
    const auto low = lowered(raw);
    if (low == "0" || low == "gnd") return "0";
    if (const auto it = scope.find(raw); it != scope.end()) return it->second;
    return prefix.empty() ? raw : prefix + "." + raw;
}

void parseElement(ParseState& st, const SourceLine& src,
                  const std::map<std::string, std::string>& scope,
                  const std::string& prefix);

/// Expand an X instantiation of a named subcircuit.
void expandSubcircuit(ParseState& st, const SourceLine& src, const Subcircuit& sub,
                      const std::vector<std::string>& outerNodes,
                      const std::map<std::string, std::string>& scope,
                      const std::string& prefix) {
    if (outerNodes.size() != sub.ports.size())
        fail(src.lineNo, "subcircuit expects " + std::to_string(sub.ports.size()) +
                             " ports, got " + std::to_string(outerNodes.size()));
    if (++st.depth > 20) fail(src.lineNo, "subcircuit nesting too deep");
    const std::string instPrefix =
        (prefix.empty() ? std::string() : prefix + ".") + src.tokens[0];
    std::map<std::string, std::string> inner;
    for (std::size_t i = 0; i < sub.ports.size(); ++i)
        inner[sub.ports[i]] = mapNode(outerNodes[i], scope, prefix);
    for (const auto& line : sub.body) parseElement(st, line, inner, instPrefix);
    --st.depth;
}

void parseElement(ParseState& st, const SourceLine& src,
                  const std::map<std::string, std::string>& scope,
                  const std::string& prefix) {
    const auto& tokens = src.tokens;
    const int lineNo = src.lineNo;
    const std::string name =
        prefix.empty() ? tokens[0] : prefix + "." + tokens[0];
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(tokens[0][0])));
    auto& circuit = st.circuit;

    auto node = [&](std::size_t i) -> spice::NodeId {
        if (i >= tokens.size()) fail(lineNo, "missing node operand");
        return circuit.node(mapNode(tokens[i], scope, prefix));
    };
    auto number = [&](std::size_t i) -> double {
        if (i >= tokens.size()) fail(lineNo, "missing numeric operand");
        try {
            return parseSpiceNumber(tokens[i]);
        } catch (const std::invalid_argument& e) {
            fail(lineNo, e.what());
        }
    };

    switch (kind) {
        case 'r': {
            if (tokens.size() != 4) fail(lineNo, "R expects: R<name> a b <ohms>");
            circuit.add<Resistor>(name, node(1), node(2), number(3));
            break;
        }
        case 'c': {
            if (tokens.size() != 4) fail(lineNo, "C expects: C<name> a b <farads>");
            circuit.add<Capacitor>(name, node(1), node(2), number(3));
            break;
        }
        case 'l': {
            if (tokens.size() != 4) fail(lineNo, "L expects: L<name> a b <henries>");
            circuit.add<Inductor>(name, circuit, node(1), node(2), number(3));
            break;
        }
        case 'e': {
            if (tokens.size() != 6) fail(lineNo, "E expects: E<name> p n cp cn <gain>");
            circuit.add<Vcvs>(name, circuit, node(1), node(2), node(3), node(4), number(5));
            break;
        }
        case 'g': {
            if (tokens.size() != 6) fail(lineNo, "G expects: G<name> p n cp cn <gm>");
            circuit.add<Vccs>(name, node(1), node(2), node(3), node(4), number(5));
            break;
        }
        case 'v': {
            if (tokens.size() < 5) fail(lineNo, "V expects: V<name> p n <kind> ...");
            const auto p = node(1);
            const auto n = node(2);
            const auto mode = lowered(tokens[3]);
            if (mode == "dc") {
                circuit.add<VoltageSource>(name, circuit, p, n, SourceWave::dc(number(4)));
            } else if (mode == "pulse") {
                if (tokens.size() < 10)
                    fail(lineNo, "PULSE expects v0 v1 tdelay trise tfall twidth [tperiod]");
                const double period = tokens.size() > 10 ? number(10) : 0.0;
                circuit.add<VoltageSource>(
                    name, circuit, p, n,
                    SourceWave::pulse(number(4), number(5), number(6), number(7), number(8),
                                      number(9), period));
            } else if (mode == "pwl") {
                if (tokens.size() < 8 || (tokens.size() - 4) % 2 != 0)
                    fail(lineNo, "PWL expects t/v pairs (at least two)");
                std::vector<double> ts, vs;
                for (std::size_t i = 4; i < tokens.size(); i += 2) {
                    ts.push_back(number(i));
                    vs.push_back(number(i + 1));
                }
                try {
                    circuit.add<VoltageSource>(name, circuit, p, n,
                                               SourceWave::pwl(ts, vs));
                } catch (const std::invalid_argument& e) {
                    fail(lineNo, e.what());
                }
            } else {
                fail(lineNo, "unknown source kind '" + tokens[3] + "'");
            }
            break;
        }
        case 'i': {
            if (tokens.size() != 5 || lowered(tokens[3]) != "dc")
                fail(lineNo, "I expects: I<name> from to DC <amps>");
            circuit.add<CurrentSource>(name, node(1), node(2), SourceWave::dc(number(4)));
            break;
        }
        case 'm': {
            if (tokens.size() < 5) fail(lineNo, "M expects: M<name> g d s NMOS|PMOS");
            const auto model = lowered(tokens[4]);
            if (model != "nmos" && model != "pmos")
                fail(lineNo, "unknown MOS model '" + tokens[4] + "'");
            checkOptionKeys(tokens, 5, {"w"}, lineNo);
            const double wMult = optionValue(tokens, 5, "w", 1.0);
            const auto params =
                model == "nmos" ? st.tech.sizedNmos(wMult) : st.tech.sizedPmos(wMult);
            circuit.add<Mosfet>(name, node(1), node(2), node(3), params);
            break;
        }
        case 'f': {
            if (tokens.size() < 4) fail(lineNo, "F expects: F<name> g d s [P=<pnorm>]");
            checkOptionKeys(tokens, 4, {"p"}, lineNo);
            const double pnorm = optionValue(tokens, 4, "p", -1.0);
            if (pnorm < -1.0 || pnorm > 1.0) fail(lineNo, "P must be in [-1,1]");
            auto& fet = circuit.add<FeFet>(name, node(1), node(2), node(3), st.tech.fefet);
            fet.setPolarization(pnorm);
            break;
        }
        case 'y': {
            if (tokens.size() < 4 || lowered(tokens[3]) != "reram")
                fail(lineNo, "Y expects: Y<name> a b RERAM [W=<state>]");
            checkOptionKeys(tokens, 4, {"w"}, lineNo);
            const double w = optionValue(tokens, 4, "w", 0.0);
            try {
                circuit.add<Reram>(name, node(1), node(2), st.tech.reram, w);
            } catch (const std::invalid_argument& e) {
                fail(lineNo, e.what());
            }
            break;
        }
        case 'x': {
            // X is either the built-in FERRO element (X<name> a b FERRO ...)
            // or a subcircuit instantiation (X<name> nodes... <subckt>).
            if (tokens.size() >= 4 && lowered(tokens[3]) == "ferro") {
                checkOptionKeys(tokens, 4, {"area", "p"}, lineNo);
                const double area =
                    optionValue(tokens, 4, "area", st.tech.fefet.effectiveFeArea());
                const double pnorm = optionValue(tokens, 4, "p", -1.0);
                try {
                    auto& fe = circuit.add<FerroCap>(name, node(1), node(2),
                                                     st.tech.fefet.ferro, area);
                    fe.setPolarization(pnorm);
                } catch (const std::invalid_argument& e) {
                    fail(lineNo, e.what());
                }
                break;
            }
            // Subcircuit: nodes..., last non-option token is the subckt name.
            std::size_t last = tokens.size();
            while (last > 1 && isOption(tokens[last - 1])) --last;
            if (last < 3) fail(lineNo, "X expects: X<name> <nodes...> <subckt>");
            const std::string subName = lowered(tokens[last - 1]);
            const auto it = st.subcircuits.find(subName);
            if (it == st.subcircuits.end())
                fail(lineNo, "unknown subcircuit '" + tokens[last - 1] + "'");
            std::vector<std::string> outerNodes(tokens.begin() + 1,
                                                tokens.begin() + (last - 1));
            expandSubcircuit(st, src, it->second, outerNodes, scope, prefix);
            break;
        }
        default:
            fail(lineNo, std::string("unknown element letter '") + tokens[0][0] + "'");
    }
    ++st.created;
}

}  // namespace

double parseSpiceNumber(const std::string& token) {
    if (token.empty()) throw std::invalid_argument("parseSpiceNumber: empty token");
    const char* begin = token.c_str();
    char* end = nullptr;
    const double base = std::strtod(begin, &end);
    if (end == begin) throw std::invalid_argument("parseSpiceNumber: bad number '" + token + "'");
    const std::string suffix = lowered(std::string(end));
    if (suffix.empty()) return base;
    if (suffix == "meg") return base * 1e6;
    // Single-letter magnitudes; trailing unit letters after the magnitude are
    // tolerated SPICE-style ("10kohm", "100ns").
    switch (suffix[0]) {
        case 'a': return base * 1e-18;
        case 'f': return base * 1e-15;
        case 'p': return base * 1e-12;
        case 'n': return base * 1e-9;
        case 'u': return base * 1e-6;
        case 'm': return base * 1e-3;
        case 'k': return base * 1e3;
        case 'g': return base * 1e9;
        case 't': return base * 1e12;
        default:
            throw std::invalid_argument("parseSpiceNumber: bad suffix '" + suffix + "'");
    }
}

int parseNetlist(const std::string& text, spice::Circuit& circuit, const TechCard& tech) {
    ParseState st{circuit, tech, {}, 0, 0};

    // Pass 1: split lines, collect .subckt bodies.
    std::istringstream lines(text);
    std::string line;
    int lineNo = 0;
    std::vector<SourceLine> top;
    Subcircuit* current = nullptr;
    std::string currentName;
    while (std::getline(lines, line)) {
        ++lineNo;
        auto tokens = tokenize(line);
        if (tokens.empty()) continue;
        const auto head = lowered(tokens[0]);
        if (head == ".subckt") {
            if (current) fail(lineNo, ".subckt may not nest inside a definition");
            if (tokens.size() < 3) fail(lineNo, ".subckt expects a name and >=1 port");
            currentName = lowered(tokens[1]);
            Subcircuit sub;
            sub.ports.assign(tokens.begin() + 2, tokens.end());
            current = &st.subcircuits.emplace(currentName, std::move(sub)).first->second;
            continue;
        }
        if (head == ".ends") {
            if (!current) fail(lineNo, ".ends without .subckt");
            current = nullptr;
            continue;
        }
        if (head[0] == '.') fail(lineNo, "unknown directive '" + tokens[0] + "'");
        if (current) {
            current->body.push_back({lineNo, std::move(tokens)});
        } else {
            top.push_back({lineNo, std::move(tokens)});
        }
    }
    if (current) throw std::invalid_argument("netlist: unterminated .subckt '" +
                                             currentName + "'");

    // Pass 2: build elements, expanding instantiations.
    const std::map<std::string, std::string> emptyScope;
    for (const auto& src : top) parseElement(st, src, emptyScope, "");
    return st.created;
}

std::string describeCircuit(const spice::Circuit& circuit) {
    std::ostringstream os;
    os << "* " << circuit.numNodes() - 1 << " nodes, " << circuit.numBranches()
       << " branches, " << circuit.devices().size() << " devices\n";
    for (const auto& d : circuit.devices()) {
        os << d->name();
        if (const auto* r = dynamic_cast<const Resistor*>(d.get()))
            os << "  R " << r->resistance() << " ohm";
        else if (const auto* c = dynamic_cast<const Capacitor*>(d.get()))
            os << "  C " << c->capacitance() << " F";
        else if (const auto* l = dynamic_cast<const Inductor*>(d.get()))
            os << "  L " << l->inductance() << " H";
        else if (const auto* e = dynamic_cast<const Vcvs*>(d.get()))
            os << "  VCVS gain=" << e->gain();
        else if (dynamic_cast<const Vccs*>(d.get()))
            os << "  VCCS";
        else if (dynamic_cast<const VoltageSource*>(d.get()))
            os << "  V source";
        else if (dynamic_cast<const CurrentSource*>(d.get()))
            os << "  I source";
        else if (const auto* f = dynamic_cast<const FeFet*>(d.get()))
            os << "  FeFET pnorm=" << f->pnorm() << " vt=" << f->vtEff();
        else if (const auto* fe = dynamic_cast<const FerroCap*>(d.get()))
            os << "  FerroCap pnorm=" << fe->pnorm();
        else if (const auto* y = dynamic_cast<const Reram*>(d.get()))
            os << "  ReRAM w=" << y->state() << " R=" << y->resistance() << " ohm";
        else if (const auto* m = dynamic_cast<const Mosfet*>(d.get()))
            os << "  MOS " << (m->params().type == MosType::Nmos ? "nmos" : "pmos")
               << " W=" << m->params().w;
        os << '\n';
    }
    return os.str();
}

}  // namespace fetcam::device
