// Independent sources and their drive waveforms.
#pragma once

#include <memory>
#include <vector>

#include "numeric/interp.hpp"
#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace fetcam::device {

/// Value-semantic description of a source waveform: DC, pulse train, or PWL.
class SourceWave {
public:
    /// Constant level.
    static SourceWave dc(double value);

    /// SPICE-style pulse: v0 before tDelay, rising over tRise to v1, holding
    /// tWidth, falling over tFall back to v0. Repeats with tPeriod if > 0.
    static SourceWave pulse(double v0, double v1, double tDelay, double tRise, double tFall,
                            double tWidth, double tPeriod = 0.0);

    /// Piecewise-linear (time, value) points; clamped outside the range.
    static SourceWave pwl(std::vector<double> times, std::vector<double> values);

    double at(double t) const;

    /// Waveform corner times in (0, tstop] — the transient engine lands steps
    /// exactly on these.
    void collectBreakpoints(double tstop, std::vector<double>& bps) const;

private:
    enum class Kind { Dc, Pulse, Pwl };
    Kind kind_ = Kind::Dc;
    double dc_ = 0.0;
    // pulse
    double v0_ = 0.0, v1_ = 0.0, tDelay_ = 0.0, tRise_ = 0.0, tFall_ = 0.0, tWidth_ = 0.0,
           tPeriod_ = 0.0;
    numeric::PiecewiseLinear pwl_;
};

/// Ideal voltage source between p (+) and n (-); its branch current is an
/// extra MNA unknown. energy() is the energy ABSORBED (negative when the
/// source delivers energy to the circuit).
class VoltageSource : public spice::Device {
public:
    VoltageSource(std::string name, spice::Circuit& circuit, spice::NodeId p, spice::NodeId n,
                  SourceWave wave);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;
    void collectBreakpoints(double tstop, std::vector<double>& bps) const override;

    double energy() const override { return energy_.energy(); }
    /// Energy delivered to the circuit so far (convenience for benches).
    double deliveredEnergy() const { return -energy_.energy(); }
    double current() const override { return lastCurrent_; }
    int branch() const { return branch_; }
    double valueAt(double t) const { return wave_.at(t); }

    /// Small-signal stimulus amplitude (0 by default: an AC short).
    void setAcMagnitude(double mag) { acMagnitude_ = mag; }
    double acMagnitude() const { return acMagnitude_; }

private:
    spice::NodeId p_, n_;
    int branch_;
    SourceWave wave_;
    spice::EnergyIntegrator energy_;
    double lastCurrent_ = 0.0;
    double acMagnitude_ = 0.0;
};

/// Ideal current source driving `wave` amperes from node `from` to `to`.
class CurrentSource : public spice::Device {
public:
    CurrentSource(std::string name, spice::NodeId from, spice::NodeId to, SourceWave wave);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;
    void collectBreakpoints(double tstop, std::vector<double>& bps) const override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastCurrent_; }

    void setAcMagnitude(double mag) { acMagnitude_ = mag; }

private:
    spice::NodeId from_, to_;
    SourceWave wave_;
    spice::EnergyIntegrator energy_;
    double lastCurrent_ = 0.0;
    double acMagnitude_ = 0.0;
};

}  // namespace fetcam::device
