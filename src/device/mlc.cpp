#include "device/mlc.hpp"

#include "recover/sim_error.hpp"

namespace fetcam::device {

MlcLevels mlcLevels(const FeFetParams& params, int statesPerCell) {
    if (statesPerCell < 2 || statesPerCell > (1 << kMaxMlcBitsPerCell))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "mlcLevels",
                                "statesPerCell must be in [2, 16]");
    if (params.deltaVt <= 0.0)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "mlcLevels",
                                "FeFET memory window must be positive");
    MlcLevels out;
    out.statesPerCell = statesPerCell;
    out.windowV = 2.0 * params.deltaVt;
    out.vtStepV = out.windowV / static_cast<double>(statesPerCell - 1);
    out.pnorm.reserve(static_cast<std::size_t>(statesPerCell));
    out.vt.reserve(static_cast<std::size_t>(statesPerCell));
    for (int level = 0; level < statesPerCell; ++level) {
        // Level 0 = fully erased (pnorm -1, highest VT); the ladder climbs
        // to fully programmed (pnorm +1, lowest VT) in equal pnorm steps —
        // the same spacing a verify-after-write programming loop targets.
        const double p =
            -1.0 + 2.0 * static_cast<double>(level) / static_cast<double>(statesPerCell - 1);
        out.pnorm.push_back(p);
        out.vt.push_back(params.mos.vt0 - params.deltaVt * p);
    }
    return out;
}

}  // namespace fetcam::device
