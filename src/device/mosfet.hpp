// MOSFET compact model.
//
// A source-referenced EKV-flavoured model: a single smooth expression covers
// subthreshold, triode and saturation, which keeps Newton iterations stable
// (no piecewise region boundaries). Channel-length modulation is first-order;
// gate capacitances are constant (Meyer-style split plus overlap), junction
// capacitances are lumped to ground. Accuracy target is "representative
// 45 nm logic", adequate for comparative TCAM energy/delay studies.
#pragma once

#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace fetcam::device {

enum class MosType { Nmos, Pmos };

struct MosfetParams {
    MosType type = MosType::Nmos;
    double w = 90e-9;        ///< channel width [m]
    double l = 45e-9;        ///< channel length [m]
    double vt0 = 0.4;        ///< threshold voltage magnitude [V]
    double kp = 4.0e-4;      ///< transconductance factor mu*Cox [A/V^2]
    double n = 1.35;         ///< subthreshold slope factor
    double lambda = 0.15;    ///< channel-length modulation [1/V]
    double cox = 2.9e-2;     ///< gate oxide capacitance per area [F/m^2]
    double cOverlap = 3e-10; ///< gate overlap capacitance per width [F/m]
    double cJunction = 8e-10;///< junction capacitance per width [F/m]
    double ut = 0.02585;     ///< thermal voltage at 300 K [V]

    double specificCurrent() const { return 2.0 * n * kp * (w / l) * ut * ut; }
    double gateCap() const { return 0.5 * cox * w * l + cOverlap * w; }  ///< per Cgs/Cgd half
    double junctionCap() const { return cJunction * w; }
};

/// Channel current evaluation shared by Mosfet and FeFet.
struct MosEval {
    double id;   ///< drain->source channel current [A]
    double gm;   ///< dId/dVgs
    double gds;  ///< dId/dVds
};

/// Evaluate the (N-type normalized) EKV channel current for given terminal
/// voltages and effective threshold. PMOS callers mirror the voltages.
MosEval ekvChannel(const MosfetParams& p, double vgs, double vds, double vtEff);

/// Four-terminal-less MOSFET (bulk implicit: ground for NMOS energy wells are
/// not modelled; junction caps go to ground).
class Mosfet : public spice::Device {
public:
    Mosfet(std::string name, spice::NodeId g, spice::NodeId d, spice::NodeId s,
           MosfetParams params);

    void stamp(spice::Mna& mna, const spice::SimContext& ctx) override;
    void stampAc(spice::AcStamper& mna, const spice::SimContext& opCtx) const override;
    void acceptStep(const spice::SimContext& ctx) override;
    void beginTransient(const spice::SimContext& ctx) override;

    double energy() const override { return energy_.energy(); }
    double current() const override { return lastId_; }  ///< channel current d->s
    const MosfetParams& params() const { return params_; }

private:
    MosEval evaluate(const spice::SimContext& ctx) const;

    spice::NodeId g_, d_, s_;
    MosfetParams params_;
    spice::CompanionCap cgs_, cgd_, cdb_, csb_;
    spice::EnergyIntegrator energy_;
    double lastId_ = 0.0;
};

}  // namespace fetcam::device
