// DC operating-point analysis with gmin stepping and source stepping.
#pragma once

#include <vector>

#include "recover/rescue.hpp"
#include "spice/circuit.hpp"
#include "spice/newton.hpp"

namespace fetcam::spice {

struct DcOpResult {
    bool converged = false;
    std::vector<double> x;      ///< solved unknowns
    double finalGmin = 0.0;     ///< gmin at which the solution converged
    int totalIterations = 0;

    /// Why the last Newton solve failed (None when converged).
    NewtonFailure failure = NewtonFailure::None;
    /// Rescue rungs attempted (gmin continuation + source stepping).
    std::vector<recover::RescueAttempt> rescues;

    double v(NodeId n) const { return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1]; }
};

struct DcOpOptions {
    NewtonOptions newton;
    double gminStart = 1e-3;
    double gminTarget = 1e-12;
    double gminShrink = 0.1;   ///< multiplier per continuation step

    /// Source-stepping fallback tried after gmin continuation fails.
    recover::RescuePolicy rescue;
};

/// Solve the DC operating point. Tries a direct solve at gminTarget first,
/// then gmin continuation from gminStart, then source stepping. Does not
/// throw on non-convergence: inspect `converged`/`failure`/`rescues`.
DcOpResult solveDcOp(const Circuit& circuit, const DcOpOptions& options = {});

}  // namespace fetcam::spice
