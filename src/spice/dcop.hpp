// DC operating-point analysis with gmin stepping.
#pragma once

#include <vector>

#include "spice/circuit.hpp"
#include "spice/newton.hpp"

namespace fetcam::spice {

struct DcOpResult {
    bool converged = false;
    std::vector<double> x;      ///< solved unknowns
    double finalGmin = 0.0;     ///< gmin at which the solution converged
    int totalIterations = 0;

    double v(NodeId n) const { return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1]; }
};

struct DcOpOptions {
    NewtonOptions newton;
    double gminStart = 1e-3;
    double gminTarget = 1e-12;
    double gminShrink = 0.1;   ///< multiplier per continuation step
};

/// Solve the DC operating point. Tries a direct solve at gminTarget first,
/// then falls back to gmin continuation from gminStart.
DcOpResult solveDcOp(const Circuit& circuit, const DcOpOptions& options = {});

}  // namespace fetcam::spice
