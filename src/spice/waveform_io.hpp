// Waveform export: CSV emission (and a small reader for round-trip tests),
// so bench results can be plotted with external tools.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "spice/waveform.hpp"

namespace fetcam::spice {

/// Named node columns to export.
using WaveColumns = std::vector<std::pair<std::string, NodeId>>;

/// Write "time,<name1>,<name2>,..." rows at the recorder's native steps.
void writeCsv(std::ostream& os, const Waveforms& waves, const WaveColumns& columns);

/// Same, resampled on a uniform grid of `points` samples (plot-friendly).
void writeCsvUniform(std::ostream& os, const Waveforms& waves, const WaveColumns& columns,
                     std::size_t points);

/// Convenience: write to a file path. Throws recover::SimError(IoError) on
/// I/O error.
void writeCsvFile(const std::string& path, const Waveforms& waves,
                  const WaveColumns& columns);

/// Minimal CSV reader for tests/tools: returns the header names and the
/// numeric rows. Throws recover::SimError(IoError) on malformed input
/// (ragged rows, non-numeric cells, empty input).
struct CsvData {
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;
};
CsvData readCsv(std::istream& is);

/// Read a CSV file from disk. Throws recover::SimError(IoError) when the
/// file cannot be opened or its contents are malformed.
CsvData readCsvFile(const std::string& path);

}  // namespace fetcam::spice
