// Persistent per-circuit solver scratch shared across Newton solves.
//
// Holds the pattern-caching MNA assembler, the reusable sparse LU (symbolic
// analysis + pivot order survive across iterations and timesteps), and the
// per-iteration solution buffer. Create one per analysis (transient run, DC
// solve, AC operating point) and pass it to every solveNewton call so the
// symbolic work and the per-iteration allocations are paid once.
//
// NOT thread-safe: one workspace per thread (parallel sweeps give each
// worker its own circuit and workspace).
#pragma once

#include <optional>
#include <vector>

#include "numeric/sparse_matrix.hpp"
#include "spice/mna.hpp"

namespace fetcam::spice {

class SolverWorkspace {
public:
    /// Adopt the circuit's dimensions, resetting all cached state if they
    /// changed. Cheap when the dimensions match (the common case).
    void bind(int numNodes, int numBranches) {
        const int unknowns = numNodes - 1 + numBranches;
        if (!mna_ || mna_->numNodes() != numNodes || mna_->unknowns() != unknowns) {
            mna_.emplace(numNodes, numBranches);
            haveFactorization_ = false;
        }
    }

    Mna& mna() { return *mna_; }
    numeric::SparseLu& lu() { return lu_; }
    std::vector<double>& solution() { return solution_; }

    /// True when the cached factorization's symbolic analysis matches the
    /// matrix the current (mapped) assembly pass compiled — i.e. lu().refactor
    /// may be attempted instead of a full lu().factor.
    bool canRefactor() const {
        return haveFactorization_ && lu_.factored() && mna_ && mna_->mappedAssembly() &&
               factoredEpoch_ == mna_->patternEpoch();
    }
    /// Record a successful full factorization of the just-compiled matrix.
    void noteFactored() {
        haveFactorization_ = mna_->patternFrozen();
        factoredEpoch_ = mna_->patternEpoch();
    }
    void dropFactorization() { haveFactorization_ = false; }

private:
    std::optional<Mna> mna_;
    numeric::SparseLu lu_;
    std::vector<double> solution_;
    bool haveFactorization_ = false;
    long long factoredEpoch_ = -1;
};

}  // namespace fetcam::spice
