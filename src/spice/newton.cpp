#include "spice/newton.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_matrix.hpp"
#include "obs/obs.hpp"
#include "spice/mna.hpp"

namespace fetcam::spice {

namespace {

/// Update solver-health metrics and emit a trace event on non-convergence.
/// Called only when obs::enabled().
void recordSolveHealth(const NewtonResult& result) {
    static obs::Counter& solves = obs::counter("spice.newton.solves");
    static obs::Counter& iterations = obs::counter("spice.newton.iterations");
    static obs::Counter& failures = obs::counter("spice.newton.nonconverged");
    solves.add();
    iterations.add(result.iterations);
    if (!result.converged) {
        failures.add();
        obs::TraceSink::global().event(
            "newton.fail",
            {{"iters", result.iterations}, {"maxDelta", result.maxDelta}});
    }
}

}  // namespace

NewtonResult solveNewton(const Circuit& circuit, const SimContext& ctx, std::vector<double>& x,
                         const NewtonOptions& options) {
    const int numNodeUnknowns = circuit.numNodes() - 1;
    Mna mna(circuit.numNodes(), circuit.numBranches());
    const bool obsOn = obs::enabled();

    NewtonResult result;
    for (int iter = 1; iter <= options.maxIterations; ++iter) {
        result.iterations = iter;
        double tMark = obsOn ? obs::monotonicSeconds() : 0.0;
        mna.clear();
        for (const auto& dev : circuit.devices()) dev->stamp(mna, ctx);
        mna.stampGminAllNodes(ctx.gmin);
        if (obsOn) {
            const double tStamped = obs::monotonicSeconds();
            result.stampSeconds += tStamped - tMark;
            tMark = tStamped;
        }

        std::vector<double> xNew;
        try {
            const auto matrix = mna.buildMatrix();
            numeric::SparseLu lu(matrix);
            xNew = lu.solve(mna.rhs());
            ++result.factorizations;
        } catch (const std::runtime_error&) {
            result.converged = false;  // singular matrix: let the caller react
            if (obsOn) {
                result.factorSeconds += obs::monotonicSeconds() - tMark;
                recordSolveHealth(result);
            }
            return result;
        }
        if (obsOn) result.factorSeconds += obs::monotonicSeconds() - tMark;

        // Damping: clamp the largest node-voltage change per iteration.
        double maxNodeDelta = 0.0;
        for (int i = 0; i < numNodeUnknowns; ++i)
            maxNodeDelta = std::max(maxNodeDelta, std::abs(xNew[i] - x[i]));
        const double scale =
            maxNodeDelta > options.maxUpdate ? options.maxUpdate / maxNodeDelta : 1.0;

        bool converged = scale == 1.0;
        double maxDelta = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double delta = scale * (xNew[i] - x[i]);
            x[i] += delta;
            maxDelta = std::max(maxDelta, std::abs(delta));
            const double absTol =
                static_cast<int>(i) < numNodeUnknowns ? options.vAbsTol : options.iAbsTol;
            if (std::abs(delta) > absTol + options.relTol * std::abs(x[i])) converged = false;
        }
        result.maxDelta = maxDelta;
        if (converged && iter > 1) {
            // Require one extra confirming iteration after full (undamped)
            // steps so strongly nonlinear devices re-evaluate at the solution.
            result.converged = true;
            if (obsOn) recordSolveHealth(result);
            return result;
        }
        if (!std::isfinite(maxDelta)) {  // diverged
            if (obsOn) recordSolveHealth(result);
            return result;
        }
    }
    if (obsOn) recordSolveHealth(result);
    return result;
}

}  // namespace fetcam::spice
