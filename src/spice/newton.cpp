#include "spice/newton.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_matrix.hpp"
#include "spice/mna.hpp"

namespace fetcam::spice {

NewtonResult solveNewton(const Circuit& circuit, const SimContext& ctx, std::vector<double>& x,
                         const NewtonOptions& options) {
    const int numNodeUnknowns = circuit.numNodes() - 1;
    Mna mna(circuit.numNodes(), circuit.numBranches());

    NewtonResult result;
    for (int iter = 1; iter <= options.maxIterations; ++iter) {
        result.iterations = iter;
        mna.clear();
        for (const auto& dev : circuit.devices()) dev->stamp(mna, ctx);
        mna.stampGminAllNodes(ctx.gmin);

        std::vector<double> xNew;
        try {
            const auto matrix = mna.buildMatrix();
            numeric::SparseLu lu(matrix);
            xNew = lu.solve(mna.rhs());
        } catch (const std::runtime_error&) {
            result.converged = false;  // singular matrix: let the caller react
            return result;
        }

        // Damping: clamp the largest node-voltage change per iteration.
        double maxNodeDelta = 0.0;
        for (int i = 0; i < numNodeUnknowns; ++i)
            maxNodeDelta = std::max(maxNodeDelta, std::abs(xNew[i] - x[i]));
        const double scale =
            maxNodeDelta > options.maxUpdate ? options.maxUpdate / maxNodeDelta : 1.0;

        bool converged = scale == 1.0;
        double maxDelta = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double delta = scale * (xNew[i] - x[i]);
            x[i] += delta;
            maxDelta = std::max(maxDelta, std::abs(delta));
            const double absTol =
                static_cast<int>(i) < numNodeUnknowns ? options.vAbsTol : options.iAbsTol;
            if (std::abs(delta) > absTol + options.relTol * std::abs(x[i])) converged = false;
        }
        result.maxDelta = maxDelta;
        if (converged && iter > 1) {
            // Require one extra confirming iteration after full (undamped)
            // steps so strongly nonlinear devices re-evaluate at the solution.
            result.converged = true;
            return result;
        }
        if (!std::isfinite(maxDelta)) return result;  // diverged
    }
    return result;
}

}  // namespace fetcam::spice
