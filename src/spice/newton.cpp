#include "spice/newton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numeric/sparse_matrix.hpp"
#include "obs/obs.hpp"
#include "recover/fault_injection.hpp"
#include "spice/mna.hpp"
#include "spice/workspace.hpp"

namespace fetcam::spice {

const char* newtonFailureName(NewtonFailure f) noexcept {
    switch (f) {
        case NewtonFailure::None: return "none";
        case NewtonFailure::NonConverged: return "non_converged";
        case NewtonFailure::SingularMatrix: return "singular_matrix";
        case NewtonFailure::NanResidual: return "nan_residual";
    }
    return "unknown";
}

namespace {

/// Update solver-health metrics and emit a trace event on non-convergence.
/// Called only when obs::enabled().
void recordSolveHealth(const NewtonResult& result) {
    static obs::Counter& solves = obs::counter("spice.newton.solves");
    static obs::Counter& iterations = obs::counter("spice.newton.iterations");
    static obs::Counter& failures = obs::counter("spice.newton.nonconverged");
    solves.add();
    iterations.add(result.iterations);
    if (!result.converged) {
        failures.add();
        obs::TraceSink::global().event(
            "newton.fail",
            {{"iters", result.iterations},
             {"maxDelta", result.maxDelta},
             {"failure", newtonFailureName(result.failure)}});
    }
}

}  // namespace

NewtonResult solveNewton(const Circuit& circuit, const SimContext& ctx, std::vector<double>& x,
                         const NewtonOptions& options, SolverWorkspace& workspace) {
    const int numNodeUnknowns = circuit.numNodes() - 1;
    workspace.bind(circuit.numNodes(), circuit.numBranches());
    Mna& mna = workspace.mna();
    const bool obsOn = obs::enabled();

    // Fault injection: consult the active plan (if any) once per solve so
    // injected faults hit deterministic Newton-solve ordinals.
    recover::SolveFaults faults;
    if (recover::FaultPlan* plan = recover::FaultPlan::active()) faults = plan->beginSolve();

    const auto stampAll = [&]() {
        for (const auto& dev : circuit.devices()) dev->stamp(mna, ctx);
        mna.stampGminAllNodes(ctx.gmin);
        if (faults.nanCurrent)
            mna.addNodeRhs(faults.node, std::numeric_limits<double>::quiet_NaN());
        if (faults.singularStamp) mna.zeroNode(faults.node);
    };

    NewtonResult result;
    for (int iter = 1; iter <= options.maxIterations; ++iter) {
        result.iterations = iter;
        double tMark = obsOn ? obs::monotonicSeconds() : 0.0;
        mna.beginAssembly(/*allowMapped=*/true);
        stampAll();
        if (!mna.endAssembly()) {
            // The stamp sequence diverged from the frozen pattern (topology
            // or conditional-stamp change): re-stamp through the triplet
            // path, which re-freezes the pattern at compile below.
            mna.beginAssembly(/*allowMapped=*/false);
            stampAll();
            mna.endAssembly();
        }
        if (obsOn) {
            const double tStamped = obs::monotonicSeconds();
            result.stampSeconds += tStamped - tMark;
            tMark = tStamped;
        }

        std::vector<double>& xNew = workspace.solution();
        try {
            const auto& matrix = mna.compile();
            bool refactored = false;
            if (workspace.canRefactor() && workspace.lu().refactor(matrix)) {
                refactored = true;
                ++result.refactorizations;
            }
            if (!refactored) {
                workspace.lu().factor(matrix);
                workspace.noteFactored();
                ++result.factorizations;
            }
            workspace.lu().solveInto(mna.rhs(), xNew);
        } catch (const std::runtime_error&) {
            workspace.dropFactorization();
            result.converged = false;  // singular matrix: let the caller react
            result.failure = NewtonFailure::SingularMatrix;
            if (obsOn) {
                result.factorSeconds += obs::monotonicSeconds() - tMark;
                recordSolveHealth(result);
            }
            return result;
        }
        if (obsOn) result.factorSeconds += obs::monotonicSeconds() - tMark;

        // Reject non-finite solutions immediately. std::max(x, NaN) keeps x,
        // so the damping/divergence logic below is blind to NaN — without this
        // scan a NaN solve could be reported as converged.
        for (double v : xNew) {
            if (!std::isfinite(v)) {
                result.converged = false;
                result.failure = NewtonFailure::NanResidual;
                if (obsOn) recordSolveHealth(result);
                return result;
            }
        }

        // Damping: clamp the largest node-voltage change per iteration.
        double maxNodeDelta = 0.0;
        for (int i = 0; i < numNodeUnknowns; ++i)
            maxNodeDelta = std::max(maxNodeDelta, std::abs(xNew[i] - x[i]));
        const double scale =
            maxNodeDelta > options.maxUpdate ? options.maxUpdate / maxNodeDelta : 1.0;

        bool converged = scale == 1.0;
        double maxDelta = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double delta = scale * (xNew[i] - x[i]);
            x[i] += delta;
            maxDelta = std::max(maxDelta, std::abs(delta));
            const double absTol =
                static_cast<int>(i) < numNodeUnknowns ? options.vAbsTol : options.iAbsTol;
            if (std::abs(delta) > absTol + options.relTol * std::abs(x[i])) converged = false;
        }
        result.maxDelta = maxDelta;
        if (converged && iter > 1) {
            // Require one extra confirming iteration after full (undamped)
            // steps so strongly nonlinear devices re-evaluate at the solution.
            result.converged = true;
            if (obsOn) recordSolveHealth(result);
            return result;
        }
        if (!std::isfinite(maxDelta)) {  // diverged
            result.failure = NewtonFailure::NanResidual;
            if (obsOn) recordSolveHealth(result);
            return result;
        }
    }
    result.failure = NewtonFailure::NonConverged;
    if (obsOn) recordSolveHealth(result);
    return result;
}

NewtonResult solveNewton(const Circuit& circuit, const SimContext& ctx, std::vector<double>& x,
                         const NewtonOptions& options) {
    SolverWorkspace workspace;
    return solveNewton(circuit, ctx, x, options, workspace);
}

}  // namespace fetcam::spice
