// Adaptive-step transient analysis.
//
// TCAM simulations are pulse-driven, so the engine starts from user-provided
// initial conditions (UIC, the default) rather than a DC operating point:
// ferroelectric gates sit on capacitive dividers that have no DC solution
// worth speaking of. A DC-seeded mode is available for conventional circuits.
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "recover/rescue.hpp"
#include "spice/circuit.hpp"
#include "spice/newton.hpp"
#include "spice/waveform.hpp"

namespace fetcam::spice {

struct TransientSpec {
    double tstop = 0.0;
    double dtMax = 0.0;       ///< required; also the plotting resolution
    double dtMin = 1e-18;
    double dtInitial = 0.0;   ///< 0 -> dtMax / 100
    IntegrationMethod method = IntegrationMethod::Trapezoidal;
    NewtonOptions newton;
    double gmin = 1e-12;

    /// Escalation ladder tried before giving up on a step (see recover/).
    recover::RescuePolicy rescue;

    /// Initial node voltages (UIC). Unlisted nodes start at 0 V.
    std::vector<std::pair<NodeId, double>> initialConditions;
};

/// Throws recover::SimError(InvalidSpec) on non-positive tstop/dtMax,
/// dtMin <= 0, dtMin >= dtMax, dtInitial > dtMax, or non-finite values
/// anywhere in the spec (including initial conditions).
void validateTransientSpec(const TransientSpec& spec);

/// Fixed log-decade histogram of accepted step sizes: one bucket per decade
/// in [1e-18, 1e-6) s plus underflow/overflow buckets. Allocation-free so it
/// can live inside every TransientResult.
struct DtHistogram {
    static constexpr int kDecadeLo = -18;  ///< first decade bucket: [1e-18, 1e-17)
    static constexpr int kDecadeHi = -6;   ///< overflow bucket starts at 1e-6
    static constexpr int kBuckets = kDecadeHi - kDecadeLo + 2;

    std::array<long long, kBuckets> counts{};

    void add(double dt) noexcept;
    long long total() const noexcept;
    /// Lower edge of bucket i (0 for the underflow bucket).
    static double bucketLowerBound(int i) noexcept;
};

/// Where the solver's work and wall time went during one transient run.
///
/// Iteration/step counts and the dt histogram are always collected (cheap
/// arithmetic). The wall-time fields require obs::enabled() — with
/// observability off they stay 0 so the hot loop never reads the clock.
struct SolverStats {
    double stampSeconds = 0.0;   ///< device eval + MNA stamping
    double factorSeconds = 0.0;  ///< sparse LU factorization + triangular solves
    double acceptSeconds = 0.0;  ///< device state commit + waveform recording
    double totalSeconds = 0.0;   ///< whole runTransient wall time
    long long factorizations = 0;    ///< full (symbolic + numeric) LU factorizations
    long long refactorizations = 0;  ///< numeric-only refactorizations (pattern reused)

    DtHistogram dtHistogram;  ///< accepted step sizes

    /// Worst-converging accepted timestep (most Newton iterations).
    double worstStepTime = 0.0;  ///< simulated time of that step
    int worstStepIterations = 0;
    double worstStepMaxDelta = 0.0;

    /// Rescue-ladder activity (see recover::RescuePolicy).
    long long rescuedSteps = 0;     ///< steps salvaged by the ladder
    long long rescueAttempts = 0;   ///< individual rungs tried (incl. failures)
    long long degradedGminSteps = 0;  ///< steps accepted at elevated gmin
};

struct TransientResult {
    Waveforms waveforms;
    int acceptedSteps = 0;
    int rejectedSteps = 0;
    /// Total Newton iterations spent, including work on rejected steps.
    int newtonIterations = 0;
    /// The rejected-step share of newtonIterations (wasted solver work).
    int rejectedNewtonIterations = 0;
    bool finished = false;  ///< reached tstop
    SolverStats stats;
};

/// Run a transient; device internal state (polarization, filament, energy
/// accumulators) is mutated in place, so query devices after the run.
TransientResult runTransient(Circuit& circuit, const TransientSpec& spec);

}  // namespace fetcam::spice
