// Adaptive-step transient analysis.
//
// TCAM simulations are pulse-driven, so the engine starts from user-provided
// initial conditions (UIC, the default) rather than a DC operating point:
// ferroelectric gates sit on capacitive dividers that have no DC solution
// worth speaking of. A DC-seeded mode is available for conventional circuits.
#pragma once

#include <utility>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/newton.hpp"
#include "spice/waveform.hpp"

namespace fetcam::spice {

struct TransientSpec {
    double tstop = 0.0;
    double dtMax = 0.0;       ///< required; also the plotting resolution
    double dtMin = 1e-18;
    double dtInitial = 0.0;   ///< 0 -> dtMax / 100
    IntegrationMethod method = IntegrationMethod::Trapezoidal;
    NewtonOptions newton;
    double gmin = 1e-12;

    /// Initial node voltages (UIC). Unlisted nodes start at 0 V.
    std::vector<std::pair<NodeId, double>> initialConditions;
};

struct TransientResult {
    Waveforms waveforms;
    int acceptedSteps = 0;
    int rejectedSteps = 0;
    int newtonIterations = 0;
    bool finished = false;  ///< reached tstop
};

/// Run a transient; device internal state (polarization, filament, energy
/// accumulators) is mutated in place, so query devices after the run.
TransientResult runTransient(Circuit& circuit, const TransientSpec& spec);

}  // namespace fetcam::spice
