// Modified nodal analysis assembler.
//
// Devices stamp their linearized companion models into this structure every
// Newton iteration. Ground (node 0) rows/columns are skipped automatically.
#pragma once

#include "numeric/sparse_matrix.hpp"
#include "spice/types.hpp"

namespace fetcam::spice {

class Mna {
public:
    Mna(int numNodes, int numBranches);

    /// Zero the matrix and right-hand side, keeping capacity.
    void clear();

    int unknowns() const { return unknowns_; }
    int numNodes() const { return numNodes_; }

    // --- raw access (indices are node/branch ids; ground rows are dropped) ---

    /// Add to the Jacobian at (row-node, col-node).
    void addNodeJacobian(NodeId row, NodeId col, double value);
    /// Add to the right-hand side of a node's KCL row. Positive means current
    /// flowing INTO the node from the stamped element's equivalent source.
    void addNodeRhs(NodeId node, double value);

    int branchIndex(int branch) const { return numNodes_ - 1 + branch; }
    void addBranchJacobian(int branchRow, int colIndex, double value);
    void addRawJacobian(int row, int col, double value);
    void addRawRhs(int row, double value);

    // --- common element stamps ---

    /// Linear conductance g between nodes a and b.
    void stampConductance(NodeId a, NodeId b, double g);

    /// Independent current source: current i flows from node `from` through
    /// the element to node `to` (i.e. leaves `from`, enters `to`).
    void stampCurrentSource(NodeId from, NodeId to, double i);

    /// Voltage-controlled current source: current g*(v(cp)-v(cn)) flows from
    /// `from` to `to`.
    void stampVccs(NodeId from, NodeId to, NodeId cp, NodeId cn, double g);

    /// Ideal voltage source of value `voltage` between p (+) and n (-),
    /// with its branch current as extra unknown `branch`.
    void stampVoltageSource(NodeId p, NodeId n, int branch, double voltage);

    /// Convergence aid: small conductance from every node to ground.
    void stampGminAllNodes(double gmin);

    /// Fault-injection aid: erase a node's row and column (and zero its RHS)
    /// so the assembled matrix is structurally singular. No-op for ground.
    void zeroNode(NodeId n);

    // --- assembly ---
    numeric::SparseMatrixCsc buildMatrix() const;
    const std::vector<double>& rhs() const { return rhs_; }

private:
    int nodeIndex(NodeId n) const { return n - 1; }  // ground -> -1

    int numNodes_;
    int unknowns_;
    numeric::TripletList triplets_;
    std::vector<double> rhs_;
};

}  // namespace fetcam::spice
