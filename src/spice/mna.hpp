// Modified nodal analysis assembler.
//
// Devices stamp their linearized companion models into this structure every
// Newton iteration. Ground (node 0) rows/columns are skipped automatically.
//
// Assembly has two speeds. The first pass accumulates triplets, sorts them
// into CSC, and FREEZES the resulting pattern together with a "stamp map":
// the value-slot index each stamp in the pass landed in, in stamp order.
// Later passes opened with beginAssembly(allowMapped=true) replay that map —
// every addEntry writes straight into SparseMatrixCsc::values() with no
// triplet accumulation, no sort, no duplicate-summing. Each mapped add
// verifies its (row, col) against the recorded sequence; any divergence
// (a device stamping conditionally, a topology change) flags the pass as
// failed at endAssembly() and the caller re-stamps through the triplet path,
// which re-freezes the new pattern.
#pragma once

#include "numeric/sparse_matrix.hpp"
#include "spice/types.hpp"

namespace fetcam::spice {

class Mna {
public:
    Mna(int numNodes, int numBranches);

    /// Start a triplet-path stamping pass (alias for beginAssembly(false)).
    void clear() { beginAssembly(false); }

    /// Start a stamping pass. With allowMapped and a frozen pattern, stamps
    /// go straight into the cached CSC values; otherwise triplets accumulate.
    void beginAssembly(bool allowMapped);
    /// Finish the pass. Returns false when a mapped pass diverged from the
    /// frozen pattern — nothing usable was assembled; re-stamp after
    /// beginAssembly(false).
    bool endAssembly();
    /// True while the current/last pass is writing through the stamp map.
    bool mappedAssembly() const { return mapped_; }
    /// True when a frozen pattern (and stamp map) is available.
    bool patternFrozen() const { return patternFrozen_; }
    /// Identifier of the frozen pattern; bumps every re-freeze. Lets a solver
    /// workspace check that a cached symbolic factorization still matches the
    /// matrix compile() returns.
    long long patternEpoch() const { return patternEpoch_; }

    int unknowns() const { return unknowns_; }
    int numNodes() const { return numNodes_; }

    // --- raw access (indices are node/branch ids; ground rows are dropped) ---

    /// Add to the Jacobian at (row-node, col-node).
    void addNodeJacobian(NodeId row, NodeId col, double value) {
        if (row == kGround || col == kGround) return;
        addEntry(nodeIndex(row), nodeIndex(col), value);
    }
    /// Add to the right-hand side of a node's KCL row. Positive means current
    /// flowing INTO the node from the stamped element's equivalent source.
    void addNodeRhs(NodeId node, double value) {
        if (node == kGround) return;
        rhs_[nodeIndex(node)] += value;
    }

    int branchIndex(int branch) const { return numNodes_ - 1 + branch; }
    void addBranchJacobian(int branchRow, int colIndex, double value) {
        addEntry(branchIndex(branchRow), colIndex, value);
    }
    void addRawJacobian(int row, int col, double value) {
        if (row < 0 || col < 0) return;
        addEntry(row, col, value);
    }
    void addRawRhs(int row, double value) {
        if (row < 0) return;
        rhs_[row] += value;
    }

    // --- common element stamps ---

    /// Linear conductance g between nodes a and b.
    void stampConductance(NodeId a, NodeId b, double g);

    /// Independent current source: current i flows from node `from` through
    /// the element to node `to` (i.e. leaves `from`, enters `to`).
    void stampCurrentSource(NodeId from, NodeId to, double i);

    /// Voltage-controlled current source: current g*(v(cp)-v(cn)) flows from
    /// `from` to `to`.
    void stampVccs(NodeId from, NodeId to, NodeId cp, NodeId cn, double g);

    /// Ideal voltage source of value `voltage` between p (+) and n (-),
    /// with its branch current as extra unknown `branch`.
    void stampVoltageSource(NodeId p, NodeId n, int branch, double voltage);

    /// Convergence aid: small conductance from every node to ground.
    void stampGminAllNodes(double gmin);

    /// Fault-injection aid: make the assembled matrix singular in node n's
    /// row/column (and zero its RHS). On the triplet path the entries are
    /// erased (structural singularity) and the pass is barred from freezing a
    /// pattern; on the mapped path the frozen pattern's values are zeroed in
    /// place (numerical singularity) — same solver outcome, pattern intact.
    /// No-op for ground.
    void zeroNode(NodeId n);

    // --- assembly ---

    /// Compile the pass into the internal CSC matrix and return it. Triplet
    /// passes rebuild the matrix (and, unless the pass was poisoned by
    /// zeroNode, freeze the pattern + stamp map); mapped passes are already
    /// compiled and return immediately.
    const numeric::SparseMatrixCsc& compile();

    /// Legacy one-shot compile: copy of the matrix for the current triplets.
    numeric::SparseMatrixCsc buildMatrix() const;

    const std::vector<double>& rhs() const { return rhs_; }

private:
    int nodeIndex(NodeId n) const { return n - 1; }  // ground -> -1

    // Hot path: one branch + one slot write when mapped.
    void addEntry(int row, int col, double value) {
        if (mapped_) {
            if (cursor_ < stampMap_.size()) {
                const StampSlot& s = stampMap_[cursor_];
                if (s.row == row && s.col == col) {
                    ++cursor_;
                    csc_.values()[s.slot] += value;
                    return;
                }
            }
            mapMiss_ = true;
            return;
        }
        triplets_.add(row, col, value);
    }

    struct StampSlot {
        int row;
        int col;
        int slot;  ///< index into csc_.values()
    };

    int numNodes_;
    int unknowns_;
    numeric::TripletList triplets_;
    std::vector<double> rhs_;

    // Frozen pattern + stamp map (valid while patternFrozen_).
    numeric::SparseMatrixCsc csc_;
    std::vector<StampSlot> stampMap_;
    bool patternFrozen_ = false;
    long long patternEpoch_ = 0;

    // Per-pass state.
    bool mapped_ = false;
    bool mapMiss_ = false;
    bool patternPoisoned_ = false;  // zeroNode erased triplets: don't freeze
    std::size_t cursor_ = 0;
};

}  // namespace fetcam::spice
