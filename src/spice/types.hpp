// Core types shared across the circuit-simulation engine.
//
// Conventions (SI units throughout):
//   volts, amperes, seconds, farads, ohms, joules.
//   Node 0 is ground. MNA unknowns are node voltages 1..N-1 followed by
//   branch currents (one per voltage source).
#pragma once

#include <vector>

namespace fetcam::spice {

/// Node identifier. 0 is ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class AnalysisMode {
    Dc,         ///< operating point: capacitors open, state frozen
    Transient,  ///< time stepping with companion models
};

enum class IntegrationMethod {
    BackwardEuler,
    Trapezoidal,
};

/// Everything a device needs to evaluate and stamp itself at a candidate
/// solution point. Owned by the solver; devices only read from it.
struct SimContext {
    AnalysisMode mode = AnalysisMode::Dc;
    IntegrationMethod method = IntegrationMethod::Trapezoidal;
    const std::vector<double>* x = nullptr;  ///< candidate unknown vector
    double time = 0.0;                       ///< time at end of the candidate step
    double dt = 0.0;                         ///< candidate step size (0 in DC)
    double gmin = 1e-12;                     ///< convergence-aid conductance to ground
    double sourceScale = 1.0;                ///< independent-source continuation factor
    int numNodes = 0;                        ///< including ground

    /// Candidate voltage of a node (ground reads as 0).
    double v(NodeId n) const { return n == kGround ? 0.0 : (*x)[n - 1]; }
    /// Candidate branch current.
    double branchCurrent(int branch) const { return (*x)[numNodes - 1 + branch]; }
};

}  // namespace fetcam::spice
