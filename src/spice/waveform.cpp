#include "spice/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fetcam::spice {

std::vector<double> Waveforms::node(NodeId n) const {
    std::vector<double> out(time_.size());
    for (std::size_t i = 0; i < time_.size(); ++i) out[i] = sampleValue(i, n);
    return out;
}

std::vector<double> Waveforms::branch(int branch) const {
    std::vector<double> out(time_.size());
    const std::size_t idx = static_cast<std::size_t>(numNodes_ - 1 + branch);
    for (std::size_t i = 0; i < time_.size(); ++i) out[i] = samples_[i][idx];
    return out;
}

double Waveforms::nodeAt(NodeId n, double t) const {
    if (time_.empty()) throw std::runtime_error("Waveforms::nodeAt: empty record");
    // A NaN t slips past both range clamps (every NaN comparison is false)
    // and would send upper_bound to end(), indexing one past the record.
    if (std::isnan(t)) throw std::runtime_error("Waveforms::nodeAt: t is NaN");
    if (t <= time_.front()) return sampleValue(0, n);
    if (t >= time_.back()) return sampleValue(time_.size() - 1, n);
    const auto it = std::upper_bound(time_.begin(), time_.end(), t);
    const std::size_t hi =
        std::min(static_cast<std::size_t>(it - time_.begin()), time_.size() - 1);
    const std::size_t lo = hi - 1;
    const double span = time_[hi] - time_[lo];
    const double frac = span > 0.0 ? (t - time_[lo]) / span : 0.0;
    return sampleValue(lo, n) + frac * (sampleValue(hi, n) - sampleValue(lo, n));
}

double Waveforms::finalNode(NodeId n) const {
    if (time_.empty()) throw std::runtime_error("Waveforms::finalNode: empty record");
    return sampleValue(time_.size() - 1, n);
}

double Waveforms::peakNode(NodeId n) const {
    double peak = 0.0;
    for (std::size_t i = 0; i < time_.size(); ++i)
        peak = std::max(peak, std::abs(sampleValue(i, n)));
    return peak;
}

}  // namespace fetcam::spice
