#include "spice/waveform_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "recover/sim_error.hpp"

namespace fetcam::spice {

namespace {

void writeHeader(std::ostream& os, const WaveColumns& columns) {
    os << "time";
    for (const auto& [name, _] : columns) os << ',' << name;
    os << '\n';
}

}  // namespace

void writeCsv(std::ostream& os, const Waveforms& waves, const WaveColumns& columns) {
    writeHeader(os, columns);
    const auto& ts = waves.time();
    for (std::size_t i = 0; i < ts.size(); ++i) {
        os << ts[i];
        for (const auto& [_, node] : columns) os << ',' << waves.nodeAt(node, ts[i]);
        os << '\n';
    }
}

void writeCsvUniform(std::ostream& os, const Waveforms& waves, const WaveColumns& columns,
                     std::size_t points) {
    if (points < 2)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "writeCsvUniform",
                                "need >= 2 points");
    if (waves.time().empty())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "writeCsvUniform",
                                "empty record");
    writeHeader(os, columns);
    const double t0 = waves.time().front();
    const double t1 = waves.time().back();
    for (std::size_t i = 0; i < points; ++i) {
        const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                                  static_cast<double>(points - 1);
        os << t;
        for (const auto& [_, node] : columns) os << ',' << waves.nodeAt(node, t);
        os << '\n';
    }
}

void writeCsvFile(const std::string& path, const Waveforms& waves,
                  const WaveColumns& columns) {
    std::ofstream os(path);
    if (!os)
        throw recover::SimError(recover::SimErrorReason::IoError, "writeCsvFile",
                                "cannot open '" + path + "'");
    writeCsv(os, waves, columns);
    if (!os)
        throw recover::SimError(recover::SimErrorReason::IoError, "writeCsvFile",
                                "write failed for '" + path + "'");
}

CsvData readCsvFile(const std::string& path) {
    std::ifstream is(path);
    if (!is)
        throw recover::SimError(recover::SimErrorReason::IoError, "readCsvFile",
                                "cannot open '" + path + "'");
    return readCsv(is);
}

CsvData readCsv(std::istream& is) {
    CsvData data;
    std::string line;
    if (!std::getline(is, line))
        throw recover::SimError(recover::SimErrorReason::IoError, "readCsv", "empty input");
    std::istringstream hs(line);
    std::string cell;
    while (std::getline(hs, cell, ',')) data.header.push_back(cell);
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        std::istringstream rs(line);
        std::vector<double> row;
        while (std::getline(rs, cell, ',')) {
            try {
                row.push_back(std::stod(cell));
            } catch (const std::exception&) {
                throw recover::SimError(recover::SimErrorReason::IoError, "readCsv",
                                        "non-numeric cell '" + cell + "'");
            }
        }
        if (row.size() != data.header.size())
            throw recover::SimError(recover::SimErrorReason::IoError, "readCsv", "ragged row");
        data.rows.push_back(std::move(row));
    }
    return data;
}

}  // namespace fetcam::spice
