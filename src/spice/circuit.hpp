// Circuit: a named-node netlist owning its devices.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spice/device.hpp"
#include "spice/types.hpp"

namespace fetcam::spice {

class Circuit {
public:
    Circuit();

    /// Get-or-create a named node. "0" and "gnd" map to ground.
    NodeId node(const std::string& name);

    /// Create a fresh internal node with a unique generated name.
    NodeId internalNode(const std::string& hint);

    /// Look up an existing node; throws if absent.
    NodeId findNode(const std::string& name) const;
    bool hasNode(const std::string& name) const;
    const std::string& nodeName(NodeId id) const;

    /// Allocate an extra MNA branch unknown (voltage-source current).
    int allocateBranch();

    int numNodes() const { return static_cast<int>(nodeNames_.size()); }  // incl. ground
    int numBranches() const { return numBranches_; }
    int numUnknowns() const { return numNodes() - 1 + numBranches_; }

    /// Construct a device in place; the circuit owns it. Returns a reference
    /// that stays valid for the circuit's lifetime.
    template <typename D, typename... Args>
    D& add(Args&&... args) {
        auto dev = std::make_unique<D>(std::forward<Args>(args)...);
        D& ref = *dev;
        devices_.push_back(std::move(dev));
        return ref;
    }

    const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

    /// Find a device by name; nullptr if absent.
    Device* findDevice(const std::string& name) const;

    /// Sum of energy() over all devices (should be ~0 by Tellegen's theorem
    /// when every device integrates with the same quadrature).
    double totalEnergy() const;

private:
    std::vector<std::unique_ptr<Device>> devices_;
    std::unordered_map<std::string, NodeId> nodeIds_;
    std::vector<std::string> nodeNames_;
    int numBranches_ = 0;
    int internalCounter_ = 0;
};

}  // namespace fetcam::spice
