// Waveform storage for transient results.
#pragma once

#include <vector>

#include "spice/types.hpp"

namespace fetcam::spice {

/// Time-indexed record of the full unknown vector at every accepted step.
class Waveforms {
public:
    Waveforms() = default;
    Waveforms(int numNodes, int numBranches)
        : numNodes_(numNodes), numBranches_(numBranches) {}

    void record(double t, const std::vector<double>& x) {
        time_.push_back(t);
        samples_.push_back(x);
    }

    std::size_t size() const { return time_.size(); }
    const std::vector<double>& time() const { return time_; }

    /// Voltage series of a node across all recorded steps.
    std::vector<double> node(NodeId n) const;

    /// Branch-current series.
    std::vector<double> branch(int branch) const;

    /// Node voltage at an arbitrary time (linear interpolation, clamped).
    double nodeAt(NodeId n, double t) const;

    /// Final (last recorded) node voltage.
    double finalNode(NodeId n) const;

    /// Peak absolute node voltage over the run.
    double peakNode(NodeId n) const;

    int numNodes() const { return numNodes_; }

private:
    double sampleValue(std::size_t step, NodeId n) const {
        return n == kGround ? 0.0 : samples_[step][static_cast<std::size_t>(n) - 1];
    }

    int numNodes_ = 0;
    int numBranches_ = 0;
    std::vector<double> time_;
    std::vector<std::vector<double>> samples_;
};

}  // namespace fetcam::spice
