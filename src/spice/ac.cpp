#include "spice/ac.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fetcam::spice {

AcStamper::AcStamper(int numNodes, int numBranches, double omega)
    : numNodes_(numNodes), omega_(omega),
      a_(static_cast<std::size_t>(numNodes - 1 + numBranches),
         static_cast<std::size_t>(numNodes - 1 + numBranches)),
      rhs_(static_cast<std::size_t>(numNodes - 1 + numBranches)) {}

void AcStamper::addNodeJacobian(NodeId row, NodeId col, numeric::Complex value) {
    if (row == kGround || col == kGround) return;
    a_(static_cast<std::size_t>(nodeIndex(row)), static_cast<std::size_t>(nodeIndex(col))) +=
        value;
}

void AcStamper::addRawJacobian(int row, int col, numeric::Complex value) {
    if (row < 0 || col < 0) return;
    a_(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += value;
}

void AcStamper::addRawRhs(int row, numeric::Complex value) {
    if (row < 0) return;
    rhs_[static_cast<std::size_t>(row)] += value;
}

void AcStamper::stampConductance(NodeId a, NodeId b, double g) {
    addNodeJacobian(a, a, g);
    addNodeJacobian(b, b, g);
    addNodeJacobian(a, b, -g);
    addNodeJacobian(b, a, -g);
}

void AcStamper::stampCapacitance(NodeId a, NodeId b, double c) {
    const numeric::Complex y{0.0, omega_ * c};
    addNodeJacobian(a, a, y);
    addNodeJacobian(b, b, y);
    addNodeJacobian(a, b, -y);
    addNodeJacobian(b, a, -y);
}

void AcStamper::stampVccs(NodeId from, NodeId to, NodeId cp, NodeId cn, double g) {
    addNodeJacobian(from, cp, g);
    addNodeJacobian(from, cn, -g);
    addNodeJacobian(to, cp, -g);
    addNodeJacobian(to, cn, g);
}

void AcStamper::stampCurrentSource(NodeId from, NodeId to, numeric::Complex i) {
    if (from != kGround) rhs_[static_cast<std::size_t>(nodeIndex(from))] -= i;
    if (to != kGround) rhs_[static_cast<std::size_t>(nodeIndex(to))] += i;
}

void AcStamper::stampVoltageSource(NodeId p, NodeId n, int branch, numeric::Complex v) {
    const auto br = static_cast<std::size_t>(numNodes_ - 1 + branch);
    if (p != kGround) {
        a_(static_cast<std::size_t>(nodeIndex(p)), br) += 1.0;
        a_(br, static_cast<std::size_t>(nodeIndex(p))) += 1.0;
    }
    if (n != kGround) {
        a_(static_cast<std::size_t>(nodeIndex(n)), br) -= 1.0;
        a_(br, static_cast<std::size_t>(nodeIndex(n))) -= 1.0;
    }
    rhs_[br] += v;
}

std::vector<numeric::Complex> AcStamper::solve() const {
    return numeric::solveComplexDense(a_, rhs_);
}

AcSpec AcSpec::logSweep(double fStart, double fStop, int pointsPerDecade) {
    if (fStart <= 0.0 || fStop <= fStart || pointsPerDecade < 1)
        throw std::invalid_argument("AcSpec::logSweep: bad sweep bounds");
    AcSpec spec;
    const double decades = std::log10(fStop / fStart);
    const int points = std::max(2, static_cast<int>(std::ceil(decades * pointsPerDecade)) + 1);
    for (int i = 0; i < points; ++i)
        spec.frequencies.push_back(
            fStart * std::pow(10.0, decades * i / static_cast<double>(points - 1)));
    return spec;
}

numeric::Complex AcResult::node(std::size_t idx, NodeId n) const {
    if (n == kGround) return {};
    return solutions_[idx][static_cast<std::size_t>(n) - 1];
}

double AcResult::magnitudeDb(std::size_t idx, NodeId n) const {
    return 20.0 * std::log10(std::max(1e-30, std::abs(node(idx, n))));
}

double AcResult::phaseDeg(std::size_t idx, NodeId n) const {
    return std::arg(node(idx, n)) * 180.0 / std::numbers::pi;
}

std::optional<double> AcResult::cornerFrequency(NodeId n) const {
    if (freqs_.empty()) return std::nullopt;
    const double ref = magnitudeDb(0, n);
    for (std::size_t i = 1; i < freqs_.size(); ++i) {
        const double db = magnitudeDb(i, n);
        if (db > ref - 3.0) continue;
        // Interpolate in (log f, dB) between the bracketing points.
        const double dbPrev = magnitudeDb(i - 1, n);
        const double t = (ref - 3.0 - dbPrev) / (db - dbPrev);
        const double lf =
            std::log10(freqs_[i - 1]) + t * (std::log10(freqs_[i]) - std::log10(freqs_[i - 1]));
        return std::pow(10.0, lf);
    }
    return std::nullopt;
}

AcResult runAc(const Circuit& circuit, const DcOpResult& op, const AcSpec& spec) {
    if (!op.converged) throw std::invalid_argument("runAc: operating point not converged");
    if (static_cast<int>(op.x.size()) != circuit.numUnknowns())
        throw std::invalid_argument("runAc: operating point/circuit mismatch");

    SimContext opCtx;
    opCtx.mode = AnalysisMode::Dc;
    opCtx.x = &op.x;
    opCtx.numNodes = circuit.numNodes();

    std::vector<std::vector<numeric::Complex>> sol;
    sol.reserve(spec.frequencies.size());
    for (const double f : spec.frequencies) {
        AcStamper st(circuit.numNodes(), circuit.numBranches(), 2.0 * std::numbers::pi * f);
        for (const auto& dev : circuit.devices()) dev->stampAc(st, opCtx);
        // Convergence/nonsingularity aid, as in the DC solve.
        for (NodeId n = 1; n < circuit.numNodes(); ++n) st.stampConductance(n, kGround, 1e-12);
        sol.push_back(st.solve());
    }
    return AcResult(spec.frequencies, std::move(sol), circuit.numNodes());
}

}  // namespace fetcam::spice
