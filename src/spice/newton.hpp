// Damped Newton-Raphson solver for the nonlinear MNA system.
#pragma once

#include <vector>

#include "spice/circuit.hpp"
#include "spice/types.hpp"

namespace fetcam::spice {

struct NewtonOptions {
    int maxIterations = 100;
    double vAbsTol = 1e-6;    ///< volts
    double iAbsTol = 1e-9;    ///< amperes (branch unknowns)
    double relTol = 1e-4;
    double maxUpdate = 0.6;   ///< max per-iteration node-voltage change (damping)
};

/// Why a Newton solve stopped short of convergence. Singular matrices are
/// distinguished from plain iteration-limit failures so callers (notably the
/// transient loop) can skip useless dt shrinking and escalate straight to the
/// rescue ladder.
enum class NewtonFailure {
    None,            ///< converged
    NonConverged,    ///< iteration limit hit without meeting tolerances
    SingularMatrix,  ///< LU factorization failed (structural or numerical)
    NanResidual,     ///< non-finite values appeared in the solution vector
};

const char* newtonFailureName(NewtonFailure f) noexcept;

struct NewtonResult {
    bool converged = false;
    NewtonFailure failure = NewtonFailure::None;
    int iterations = 0;
    double maxDelta = 0.0;  ///< largest unknown change in the final iteration
    int factorizations = 0;    ///< full (symbolic + numeric) LU factorizations
    int refactorizations = 0;  ///< cheap numeric-only refactorizations (pattern reused)

    /// Wall-time breakdown, collected only when obs::enabled() (0 otherwise).
    double stampSeconds = 0.0;   ///< device eval + MNA stamping
    double factorSeconds = 0.0;  ///< matrix build + LU factor + solve
};

class SolverWorkspace;

/// Iterate devices' linearized stamps until the unknown vector x converges.
/// `ctx.x` must point at `x`. On failure x holds the last iterate.
///
/// The workspace carries the frozen MNA pattern, the reusable LU and the
/// solution buffer across calls: pass the same workspace for every solve of
/// one circuit (per thread) so iterations after the first pay only in-place
/// stamping plus a numeric refactorization.
NewtonResult solveNewton(const Circuit& circuit, const SimContext& ctx, std::vector<double>& x,
                         const NewtonOptions& options, SolverWorkspace& workspace);

/// Convenience overload with a throwaway workspace (first solve pays the full
/// assembly + symbolic cost; fine for one-shot solves and tests).
NewtonResult solveNewton(const Circuit& circuit, const SimContext& ctx, std::vector<double>& x,
                         const NewtonOptions& options);

}  // namespace fetcam::spice
