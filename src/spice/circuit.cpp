#include "spice/circuit.hpp"

namespace fetcam::spice {

Circuit::Circuit() {
    nodeNames_.push_back("0");
    nodeIds_.emplace("0", kGround);
    nodeIds_.emplace("gnd", kGround);
}

NodeId Circuit::node(const std::string& name) {
    if (auto it = nodeIds_.find(name); it != nodeIds_.end()) return it->second;
    const NodeId id = static_cast<NodeId>(nodeNames_.size());
    nodeNames_.push_back(name);
    nodeIds_.emplace(name, id);
    return id;
}

NodeId Circuit::internalNode(const std::string& hint) {
    return node("__" + hint + "#" + std::to_string(internalCounter_++));
}

NodeId Circuit::findNode(const std::string& name) const {
    if (auto it = nodeIds_.find(name); it != nodeIds_.end()) return it->second;
    throw std::out_of_range("Circuit::findNode: unknown node '" + name + "'");
}

bool Circuit::hasNode(const std::string& name) const { return nodeIds_.contains(name); }

const std::string& Circuit::nodeName(NodeId id) const {
    return nodeNames_.at(static_cast<std::size_t>(id));
}

int Circuit::allocateBranch() { return numBranches_++; }

Device* Circuit::findDevice(const std::string& name) const {
    for (const auto& d : devices_)
        if (d->name() == name) return d.get();
    return nullptr;
}

double Circuit::totalEnergy() const {
    double acc = 0.0;
    for (const auto& d : devices_) acc += d->energy();
    return acc;
}

}  // namespace fetcam::spice
