#include "spice/dcop.hpp"

#include "obs/obs.hpp"

namespace fetcam::spice {

DcOpResult solveDcOp(const Circuit& circuit, const DcOpOptions& options) {
    obs::SpanGuard span("spice.dcop", {{"unknowns", circuit.numUnknowns()}});
    if (obs::enabled()) {
        static obs::Counter& solves = obs::counter("spice.dcop.solves");
        solves.add();
    }
    DcOpResult result;
    result.x.assign(static_cast<std::size_t>(circuit.numUnknowns()), 0.0);

    SimContext ctx;
    ctx.mode = AnalysisMode::Dc;
    ctx.x = &result.x;
    ctx.numNodes = circuit.numNodes();

    // Attempt 1: direct solve at the target gmin.
    ctx.gmin = options.gminTarget;
    NewtonResult nr = solveNewton(circuit, ctx, result.x, options.newton);
    result.totalIterations += nr.iterations;
    if (nr.converged) {
        result.converged = true;
        result.finalGmin = options.gminTarget;
        return result;
    }

    // Attempt 2: gmin continuation, re-using each level's solution as the
    // starting point for the next.
    std::fill(result.x.begin(), result.x.end(), 0.0);
    for (double gmin = options.gminStart; gmin >= options.gminTarget * 0.999;
         gmin *= options.gminShrink) {
        ctx.gmin = gmin;
        nr = solveNewton(circuit, ctx, result.x, options.newton);
        result.totalIterations += nr.iterations;
        obs::TraceSink::global().event("dcop.gmin_step", {{"gmin", gmin},
                                                          {"iters", nr.iterations},
                                                          {"converged", nr.converged}});
        if (!nr.converged) {
            result.converged = false;
            return result;
        }
        result.finalGmin = gmin;
    }
    result.converged = true;
    return result;
}

}  // namespace fetcam::spice
