#include "spice/dcop.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "spice/workspace.hpp"

namespace fetcam::spice {

DcOpResult solveDcOp(const Circuit& circuit, const DcOpOptions& options) {
    obs::SpanGuard span("spice.dcop", {{"unknowns", circuit.numUnknowns()}});
    if (obs::enabled()) {
        static obs::Counter& solves = obs::counter("spice.dcop.solves");
        solves.add();
    }
    DcOpResult result;
    result.x.assign(static_cast<std::size_t>(circuit.numUnknowns()), 0.0);

    SimContext ctx;
    ctx.mode = AnalysisMode::Dc;
    ctx.x = &result.x;
    ctx.numNodes = circuit.numNodes();

    // One workspace across all attempts: the DC Jacobian pattern is the same
    // for the direct solve, the gmin ramp, and source stepping.
    SolverWorkspace workspace;

    // Attempt 1: direct solve at the target gmin.
    ctx.gmin = options.gminTarget;
    NewtonResult nr = solveNewton(circuit, ctx, result.x, options.newton, workspace);
    result.totalIterations += nr.iterations;
    if (nr.converged) {
        result.converged = true;
        result.finalGmin = options.gminTarget;
        return result;
    }
    result.failure = nr.failure;

    // Attempt 2: gmin continuation, re-using each level's solution as the
    // starting point for the next.
    std::fill(result.x.begin(), result.x.end(), 0.0);
    bool gminOk = true;
    for (double gmin = options.gminStart; gmin >= options.gminTarget * 0.999;
         gmin *= options.gminShrink) {
        ctx.gmin = gmin;
        nr = solveNewton(circuit, ctx, result.x, options.newton, workspace);
        result.totalIterations += nr.iterations;
        result.rescues.push_back(
            {recover::RescueRung::GminRamp, gmin, nr.converged, nr.iterations});
        obs::TraceSink::global().event("dcop.gmin_step", {{"gmin", gmin},
                                                          {"iters", nr.iterations},
                                                          {"converged", nr.converged}});
        if (!nr.converged) {
            result.failure = nr.failure;
            gminOk = false;
            break;
        }
        result.finalGmin = gmin;
    }
    if (gminOk) {
        result.converged = true;
        result.failure = NewtonFailure::None;
        return result;
    }

    // Attempt 3: source stepping — ramp the independent sources up from a
    // fraction of their value, each rung seeding the next, ending at 1.0.
    if (options.rescue.enabled) {
        std::fill(result.x.begin(), result.x.end(), 0.0);
        ctx.gmin = options.gminTarget;
        bool chainOk = true;
        std::vector<double> scales;
        for (double s : options.rescue.sourceSteps)
            if (s > 0.0 && s < 1.0) scales.push_back(s);
        scales.push_back(1.0);
        for (double s : scales) {
            ctx.sourceScale = s;
            nr = solveNewton(circuit, ctx, result.x, options.newton, workspace);
            result.totalIterations += nr.iterations;
            result.rescues.push_back(
                {recover::RescueRung::SourceStepping, s, nr.converged, nr.iterations});
            obs::TraceSink::global().event("dcop.source_step", {{"scale", s},
                                                                {"iters", nr.iterations},
                                                                {"converged", nr.converged}});
            if (!nr.converged) {
                result.failure = nr.failure;
                chainOk = false;
                break;
            }
        }
        ctx.sourceScale = 1.0;
        if (chainOk) {
            result.converged = true;
            result.failure = NewtonFailure::None;
            result.finalGmin = options.gminTarget;
            if (obs::enabled()) {
                static obs::Counter& rescued = obs::counter("spice.dcop.source_rescues");
                rescued.add();
            }
            return result;
        }
    }

    result.converged = false;
    return result;
}

}  // namespace fetcam::spice
