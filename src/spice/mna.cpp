#include "spice/mna.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace fetcam::spice {

Mna::Mna(int numNodes, int numBranches)
    : numNodes_(numNodes),
      unknowns_(numNodes - 1 + numBranches),
      triplets_(unknowns_, unknowns_),
      rhs_(static_cast<std::size_t>(unknowns_), 0.0) {}

void Mna::beginAssembly(bool allowMapped) {
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    mapMiss_ = false;
    patternPoisoned_ = false;
    cursor_ = 0;
    mapped_ = allowMapped && patternFrozen_;
    if (mapped_)
        csc_.zeroValues();
    else
        triplets_.clear();
}

bool Mna::endAssembly() {
    // A mapped pass must consume the exact recorded stamp sequence; a short
    // pass (device skipped a stamp) is as much a divergence as a mismatch.
    if (mapped_ && (mapMiss_ || cursor_ != stampMap_.size())) {
        mapped_ = false;
        return false;
    }
    return true;
}

void Mna::stampConductance(NodeId a, NodeId b, double g) {
    addNodeJacobian(a, a, g);
    addNodeJacobian(b, b, g);
    addNodeJacobian(a, b, -g);
    addNodeJacobian(b, a, -g);
}

void Mna::stampCurrentSource(NodeId from, NodeId to, double i) {
    addNodeRhs(from, -i);
    addNodeRhs(to, i);
}

void Mna::stampVccs(NodeId from, NodeId to, NodeId cp, NodeId cn, double g) {
    addNodeJacobian(from, cp, g);
    addNodeJacobian(from, cn, -g);
    addNodeJacobian(to, cp, -g);
    addNodeJacobian(to, cn, g);
}

void Mna::stampVoltageSource(NodeId p, NodeId n, int branch, double voltage) {
    const int br = branchIndex(branch);
    if (p != kGround) {
        addEntry(nodeIndex(p), br, 1.0);
        addEntry(br, nodeIndex(p), 1.0);
    }
    if (n != kGround) {
        addEntry(nodeIndex(n), br, -1.0);
        addEntry(br, nodeIndex(n), -1.0);
    }
    rhs_[br] += voltage;
}

void Mna::stampGminAllNodes(double gmin) {
    for (NodeId n = 1; n < numNodes_; ++n) addNodeJacobian(n, n, gmin);
}

void Mna::zeroNode(NodeId n) {
    if (n == kGround || n >= numNodes_) return;
    const int idx = nodeIndex(n);
    if (mapped_) {
        // Zero the row and column in place: numerically singular, pattern
        // intact, so the stamp map survives the faulted solve.
        auto& vals = csc_.values();
        const auto& cp = csc_.colPtr();
        const auto& ri = csc_.rowIdx();
        for (int p = cp[idx]; p < cp[idx + 1]; ++p) vals[p] = 0.0;
        for (int c = 0; c < csc_.cols(); ++c)
            for (int p = cp[c]; p < cp[c + 1]; ++p)
                if (ri[p] == idx) vals[p] = 0.0;
    } else {
        triplets_.eraseIf([idx](const numeric::TripletList::Entry& e) {
            return e.row == idx || e.col == idx;
        });
        // The erased pattern must not be frozen: it only exists while the
        // fault is active.
        patternPoisoned_ = true;
        patternFrozen_ = false;
        stampMap_.clear();
    }
    rhs_[idx] = 0.0;
}

const numeric::SparseMatrixCsc& Mna::compile() {
    if (mapped_) {
        if (obs::enabled()) {
            static obs::Counter& mappedPasses = obs::counter("spice.mna.mapped_passes");
            mappedPasses.add();
        }
        return csc_;
    }
    if (obs::enabled()) {
        static obs::Counter& builds = obs::counter("spice.mna.matrix_builds");
        static obs::Gauge& unknowns = obs::gauge("spice.mna.unknowns");
        builds.add();
        unknowns.set(unknowns_);
    }
    if (patternPoisoned_) {
        csc_ = numeric::SparseMatrixCsc::fromTriplets(triplets_);
        return csc_;
    }
    std::vector<int> slots;
    csc_ = numeric::SparseMatrixCsc::fromTriplets(triplets_, &slots);
    const auto& es = triplets_.entries();
    stampMap_.resize(es.size());
    for (std::size_t i = 0; i < es.size(); ++i)
        stampMap_[i] = {es[i].row, es[i].col, slots[i]};
    patternFrozen_ = true;
    ++patternEpoch_;
    return csc_;
}

numeric::SparseMatrixCsc Mna::buildMatrix() const {
    if (obs::enabled()) {
        static obs::Counter& builds = obs::counter("spice.mna.matrix_builds");
        static obs::Gauge& unknowns = obs::gauge("spice.mna.unknowns");
        builds.add();
        unknowns.set(unknowns_);
    }
    return numeric::SparseMatrixCsc::fromTriplets(triplets_);
}

}  // namespace fetcam::spice
