#include "spice/mna.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace fetcam::spice {

Mna::Mna(int numNodes, int numBranches)
    : numNodes_(numNodes),
      unknowns_(numNodes - 1 + numBranches),
      triplets_(unknowns_, unknowns_),
      rhs_(static_cast<std::size_t>(unknowns_), 0.0) {}

void Mna::clear() {
    triplets_.clear();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
}

void Mna::addNodeJacobian(NodeId row, NodeId col, double value) {
    if (row == kGround || col == kGround) return;
    triplets_.add(nodeIndex(row), nodeIndex(col), value);
}

void Mna::addNodeRhs(NodeId node, double value) {
    if (node == kGround) return;
    rhs_[nodeIndex(node)] += value;
}

void Mna::addBranchJacobian(int branchRow, int colIndex, double value) {
    triplets_.add(branchIndex(branchRow), colIndex, value);
}

void Mna::addRawJacobian(int row, int col, double value) {
    if (row < 0 || col < 0) return;
    triplets_.add(row, col, value);
}

void Mna::addRawRhs(int row, double value) {
    if (row < 0) return;
    rhs_[row] += value;
}

void Mna::stampConductance(NodeId a, NodeId b, double g) {
    addNodeJacobian(a, a, g);
    addNodeJacobian(b, b, g);
    addNodeJacobian(a, b, -g);
    addNodeJacobian(b, a, -g);
}

void Mna::stampCurrentSource(NodeId from, NodeId to, double i) {
    addNodeRhs(from, -i);
    addNodeRhs(to, i);
}

void Mna::stampVccs(NodeId from, NodeId to, NodeId cp, NodeId cn, double g) {
    addNodeJacobian(from, cp, g);
    addNodeJacobian(from, cn, -g);
    addNodeJacobian(to, cp, -g);
    addNodeJacobian(to, cn, g);
}

void Mna::stampVoltageSource(NodeId p, NodeId n, int branch, double voltage) {
    const int br = branchIndex(branch);
    if (p != kGround) {
        triplets_.add(nodeIndex(p), br, 1.0);
        triplets_.add(br, nodeIndex(p), 1.0);
    }
    if (n != kGround) {
        triplets_.add(nodeIndex(n), br, -1.0);
        triplets_.add(br, nodeIndex(n), -1.0);
    }
    rhs_[br] += voltage;
}

void Mna::stampGminAllNodes(double gmin) {
    for (NodeId n = 1; n < numNodes_; ++n) addNodeJacobian(n, n, gmin);
}

void Mna::zeroNode(NodeId n) {
    if (n == kGround || n >= numNodes_) return;
    const int idx = nodeIndex(n);
    triplets_.eraseIf([idx](const numeric::TripletList::Entry& e) {
        return e.row == idx || e.col == idx;
    });
    rhs_[idx] = 0.0;
}

numeric::SparseMatrixCsc Mna::buildMatrix() const {
    if (obs::enabled()) {
        static obs::Counter& builds = obs::counter("spice.mna.matrix_builds");
        static obs::Gauge& unknowns = obs::gauge("spice.mna.unknowns");
        builds.add();
        unknowns.set(unknowns_);
    }
    return numeric::SparseMatrixCsc::fromTriplets(triplets_);
}

}  // namespace fetcam::spice
