#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace fetcam::spice {

void DtHistogram::add(double dt) noexcept {
    if (dt <= 0.0) return;
    // Decade from the binary exponent (ilogb costs a few cycles; log10 does
    // not): floor(ilogb * log10(2)) is the true decade or one below it, so
    // promote when dt already reaches the next decade's lower bound.
    int decade = static_cast<int>(
        std::floor(static_cast<double>(std::ilogb(dt)) * 0.30102999566398120));
    if (decade + 1 >= kDecadeLo && decade + 1 <= kDecadeHi &&
        dt >= bucketLowerBound(decade + 1 - kDecadeLo + 1))
        ++decade;
    const int index = std::clamp(decade - kDecadeLo + 1, 0, kBuckets - 1);
    ++counts[static_cast<std::size_t>(index)];
}

long long DtHistogram::total() const noexcept {
    long long n = 0;
    for (const long long c : counts) n += c;
    return n;
}

double DtHistogram::bucketLowerBound(int i) noexcept {
    static constexpr double kLowerBounds[kBuckets] = {
        0.0,   1e-18, 1e-17, 1e-16, 1e-15, 1e-14, 1e-13,
        1e-12, 1e-11, 1e-10, 1e-9,  1e-8,  1e-7,  1e-6,
    };
    if (i <= 0) return 0.0;
    return kLowerBounds[std::min(i, kBuckets - 1)];
}

namespace {

/// Merge, sort and dedupe breakpoints into (0, tstop].
std::vector<double> collectBreakpoints(const Circuit& circuit, double tstop) {
    std::vector<double> bps;
    for (const auto& dev : circuit.devices()) dev->collectBreakpoints(tstop, bps);
    bps.push_back(tstop);
    std::sort(bps.begin(), bps.end());
    std::vector<double> out;
    for (double t : bps) {
        if (t <= 0.0 || t > tstop) continue;
        if (!out.empty() && t - out.back() < 1e-18) continue;
        out.push_back(t);
    }
    return out;
}

}  // namespace

TransientResult runTransient(Circuit& circuit, const TransientSpec& spec) {
    if (spec.tstop <= 0.0) throw std::invalid_argument("runTransient: tstop must be > 0");
    if (spec.dtMax <= 0.0) throw std::invalid_argument("runTransient: dtMax must be > 0");
    const double dtInitial = spec.dtInitial > 0.0 ? spec.dtInitial : spec.dtMax / 100.0;

    std::vector<double> x(static_cast<std::size_t>(circuit.numUnknowns()), 0.0);
    for (const auto& [node, v] : spec.initialConditions) {
        if (node != kGround) x[static_cast<std::size_t>(node) - 1] = v;
    }

    SimContext ctx;
    ctx.mode = AnalysisMode::Transient;
    ctx.method = spec.method;
    ctx.x = &x;
    ctx.time = 0.0;
    ctx.dt = 0.0;
    ctx.gmin = spec.gmin;
    ctx.numNodes = circuit.numNodes();

    for (const auto& dev : circuit.devices()) dev->beginTransient(ctx);

    TransientResult result;
    result.waveforms = Waveforms(circuit.numNodes(), circuit.numBranches());
    result.waveforms.record(0.0, x);

    const std::vector<double> breakpoints = collectBreakpoints(circuit, spec.tstop);
    std::size_t nextBp = 0;

    double t = 0.0;
    double dt = dtInitial;
    // Backward Euler for a couple of steps after t=0 and after every source
    // discontinuity: damps the trapezoidal rule's tendency to ring on steps.
    int beStepsLeft = 2;

    const bool obsOn = obs::enabled();
    const double tWall0 = obsOn ? obs::monotonicSeconds() : 0.0;
    obs::SpanGuard span("spice.transient",
                        {{"tstop", spec.tstop}, {"unknowns", circuit.numUnknowns()}});
    auto& sink = obs::TraceSink::global();

    std::vector<double> xBackup;
    while (t < spec.tstop - 1e-21) {
        // Clamp to the next breakpoint, snapping when nearly there.
        double dtStep = std::min(dt, spec.dtMax);
        if (nextBp < breakpoints.size()) {
            const double toBp = breakpoints[nextBp] - t;
            if (dtStep >= toBp - spec.dtMin) dtStep = toBp;
        }
        dtStep = std::min(dtStep, spec.tstop - t);

        ctx.dt = dtStep;
        ctx.time = t + dtStep;
        ctx.method = beStepsLeft > 0 ? IntegrationMethod::BackwardEuler : spec.method;

        xBackup = x;
        const NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton);
        // Total work includes iterations burned on steps we go on to reject.
        result.newtonIterations += nr.iterations;
        result.stats.stampSeconds += nr.stampSeconds;
        result.stats.factorSeconds += nr.factorSeconds;
        result.stats.factorizations += nr.factorizations;

        if (!nr.converged) {
            ++result.rejectedSteps;
            result.rejectedNewtonIterations += nr.iterations;
            if (sink.active())
                sink.event("step.reject", {{"t", ctx.time},
                                           {"dt", dtStep},
                                           {"iters", nr.iterations},
                                           {"maxDelta", nr.maxDelta}});
            x = xBackup;
            dt = dtStep / 4.0;
            if (dt < spec.dtMin)
                throw std::runtime_error("runTransient: time step underflow at t=" +
                                         std::to_string(t));
            beStepsLeft = std::max(beStepsLeft, 1);
            continue;
        }

        // Accepted: commit device state, record, advance.
        const double tAccept0 = obsOn ? obs::monotonicSeconds() : 0.0;
        for (const auto& dev : circuit.devices()) dev->acceptStep(ctx);
        t = ctx.time;
        result.waveforms.record(t, x);
        if (obsOn) result.stats.acceptSeconds += obs::monotonicSeconds() - tAccept0;
        ++result.acceptedSteps;
        result.stats.dtHistogram.add(dtStep);
        if (nr.iterations > result.stats.worstStepIterations) {
            result.stats.worstStepIterations = nr.iterations;
            result.stats.worstStepTime = t;
            result.stats.worstStepMaxDelta = nr.maxDelta;
        }
        if (sink.active())
            sink.event("step.accept", {{"t", t},
                                       {"dt", dtStep},
                                       {"iters", nr.iterations},
                                       {"maxDelta", nr.maxDelta}});
        if (beStepsLeft > 0) --beStepsLeft;

        const bool hitBp = nextBp < breakpoints.size() &&
                           std::abs(t - breakpoints[nextBp]) <= spec.dtMin;
        if (hitBp) {
            ++nextBp;
            dt = dtInitial;   // restart small after a discontinuity
            beStepsLeft = 2;
        } else if (nr.iterations <= 8) {
            dt = std::min(dtStep * 1.5, spec.dtMax);
        } else {
            dt = dtStep;  // struggling: hold the step size
        }
    }

    result.finished = true;
    if (obsOn) {
        result.stats.totalSeconds = obs::monotonicSeconds() - tWall0;
        static obs::Counter& runs = obs::counter("spice.transient.runs");
        static obs::Counter& accepted = obs::counter("spice.transient.accepted_steps");
        static obs::Counter& rejected = obs::counter("spice.transient.rejected_steps");
        runs.add();
        accepted.add(result.acceptedSteps);
        rejected.add(result.rejectedSteps);
        span.add({"steps", result.acceptedSteps});
        span.add({"rejected", result.rejectedSteps});
        span.add({"iters", result.newtonIterations});
    }
    return result;
}

}  // namespace fetcam::spice
