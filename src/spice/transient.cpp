#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/obs.hpp"
#include "recover/sim_error.hpp"
#include "spice/workspace.hpp"

namespace fetcam::spice {

void DtHistogram::add(double dt) noexcept {
    if (dt <= 0.0) return;
    // Decade from the binary exponent (ilogb costs a few cycles; log10 does
    // not): floor(ilogb * log10(2)) is the true decade or one below it, so
    // promote when dt already reaches the next decade's lower bound.
    int decade = static_cast<int>(
        std::floor(static_cast<double>(std::ilogb(dt)) * 0.30102999566398120));
    if (decade + 1 >= kDecadeLo && decade + 1 <= kDecadeHi &&
        dt >= bucketLowerBound(decade + 1 - kDecadeLo + 1))
        ++decade;
    const int index = std::clamp(decade - kDecadeLo + 1, 0, kBuckets - 1);
    ++counts[static_cast<std::size_t>(index)];
}

long long DtHistogram::total() const noexcept {
    long long n = 0;
    for (const long long c : counts) n += c;
    return n;
}

double DtHistogram::bucketLowerBound(int i) noexcept {
    static constexpr double kLowerBounds[kBuckets] = {
        0.0,   1e-18, 1e-17, 1e-16, 1e-15, 1e-14, 1e-13,
        1e-12, 1e-11, 1e-10, 1e-9,  1e-8,  1e-7,  1e-6,
    };
    if (i <= 0) return 0.0;
    return kLowerBounds[std::min(i, kBuckets - 1)];
}

namespace {

/// Merge, sort and dedupe breakpoints into (0, tstop].
std::vector<double> collectBreakpoints(const Circuit& circuit, double tstop) {
    std::vector<double> bps;
    for (const auto& dev : circuit.devices()) dev->collectBreakpoints(tstop, bps);
    bps.push_back(tstop);
    std::sort(bps.begin(), bps.end());
    std::vector<double> out;
    for (double t : bps) {
        if (t <= 0.0 || t > tstop) continue;
        if (!out.empty() && t - out.back() < 1e-18) continue;
        out.push_back(t);
    }
    return out;
}

}  // namespace

void validateTransientSpec(const TransientSpec& spec) {
    auto fail = [](const std::string& msg) {
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "runTransient", msg);
    };
    if (!std::isfinite(spec.tstop) || spec.tstop <= 0.0) fail("tstop must be finite and > 0");
    if (!std::isfinite(spec.dtMax) || spec.dtMax <= 0.0) fail("dtMax must be finite and > 0");
    if (!std::isfinite(spec.dtMin) || spec.dtMin <= 0.0) fail("dtMin must be finite and > 0");
    if (spec.dtMin >= spec.dtMax) fail("dtMin must be < dtMax");
    if (!std::isfinite(spec.dtInitial) || spec.dtInitial < 0.0)
        fail("dtInitial must be finite and >= 0");
    if (spec.dtInitial > spec.dtMax) fail("dtInitial must be <= dtMax");
    if (!std::isfinite(spec.gmin) || spec.gmin < 0.0) fail("gmin must be finite and >= 0");
    for (const auto& [node, v] : spec.initialConditions) {
        if (node < kGround) fail("initial condition on negative node " + std::to_string(node));
        if (!std::isfinite(v))
            fail("non-finite initial condition on node " + std::to_string(node));
    }
}

TransientResult runTransient(Circuit& circuit, const TransientSpec& spec) {
    validateTransientSpec(spec);
    const double dtInitial = spec.dtInitial > 0.0 ? spec.dtInitial : spec.dtMax / 100.0;

    std::vector<double> x(static_cast<std::size_t>(circuit.numUnknowns()), 0.0);
    for (const auto& [node, v] : spec.initialConditions) {
        if (node != kGround) x[static_cast<std::size_t>(node) - 1] = v;
    }

    SimContext ctx;
    ctx.mode = AnalysisMode::Transient;
    ctx.method = spec.method;
    ctx.x = &x;
    ctx.time = 0.0;
    ctx.dt = 0.0;
    ctx.gmin = spec.gmin;
    ctx.numNodes = circuit.numNodes();

    for (const auto& dev : circuit.devices()) dev->beginTransient(ctx);

    TransientResult result;
    result.waveforms = Waveforms(circuit.numNodes(), circuit.numBranches());
    result.waveforms.record(0.0, x);

    const std::vector<double> breakpoints = collectBreakpoints(circuit, spec.tstop);
    std::size_t nextBp = 0;

    double t = 0.0;
    double dt = dtInitial;
    // Backward Euler for a couple of steps after t=0 and after every source
    // discontinuity: damps the trapezoidal rule's tendency to ring on steps.
    int beStepsLeft = 2;

    const bool obsOn = obs::enabled();
    const double tWall0 = obsOn ? obs::monotonicSeconds() : 0.0;
    obs::SpanGuard span("spice.transient",
                        {{"tstop", spec.tstop}, {"unknowns", circuit.numUnknowns()}});
    auto& sink = obs::TraceSink::global();

    std::vector<double> xBackup;
    std::vector<recover::RescueAttempt> trail;  // rungs tried for the current step
    double rescuedGmin = spec.gmin;             // gmin the last rescue accepted at

    // One workspace for the whole run: the MNA pattern, symbolic LU and
    // solution buffer survive across timesteps and rescue rungs.
    SolverWorkspace workspace;

    // Account for one ladder solve and append it to the rescue trail.
    auto bookkeepRung = [&](recover::RescueRung rung, double value, const NewtonResult& nr) {
        result.newtonIterations += nr.iterations;
        result.stats.stampSeconds += nr.stampSeconds;
        result.stats.factorSeconds += nr.factorSeconds;
        result.stats.factorizations += nr.factorizations;
        result.stats.refactorizations += nr.refactorizations;
        ++result.stats.rescueAttempts;
        trail.push_back({rung, value, nr.converged, nr.iterations});
        if (sink.active())
            sink.event("rescue.attempt", {{"rung", recover::rungName(rung)},
                                          {"value", value},
                                          {"ok", nr.converged ? 1 : 0},
                                          {"iters", nr.iterations}});
    };

    // Escalation ladder for a step neither dt-shrinking nor plain retries can
    // solve: tighter damping -> gmin ramp -> source stepping -> forced BE.
    // On success x holds the converged solution for (t, t+ctx.dt), `nrOut` the
    // final rung's solve, and ctx is restored to its normal per-step settings.
    auto tryLadder = [&](NewtonResult& nrOut) -> bool {
        const recover::RescuePolicy& policy = spec.rescue;
        rescuedGmin = spec.gmin;

        // Rung 1: tighter damping — strongly nonlinear devices sometimes just
        // need smaller Newton updates.
        for (double level : policy.dampingLevels) {
            if (level <= 0.0 || level >= spec.newton.maxUpdate) continue;
            x = xBackup;
            NewtonOptions opts = spec.newton;
            opts.maxUpdate = level;
            const NewtonResult nr = solveNewton(circuit, ctx, x, opts, workspace);
            bookkeepRung(recover::RescueRung::TightenDamping, level, nr);
            if (nr.converged) {
                nrOut = nr;
                return true;
            }
        }

        // Rung 2: gmin ramp — solve with a strong conductance to ground, then
        // walk it back down reusing each solution as the next starting point.
        {
            x = xBackup;
            std::vector<double> xGood;
            NewtonResult nrGood;
            double gGood = -1.0;
            bool chainBroken = false;
            for (double g : policy.gminLevels) {
                if (g <= spec.gmin) continue;  // already at or below target
                ctx.gmin = g;
                const NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton, workspace);
                bookkeepRung(recover::RescueRung::GminRamp, g, nr);
                if (!nr.converged) {
                    chainBroken = true;
                    break;
                }
                xGood = x;
                nrGood = nr;
                gGood = g;
            }
            if (!chainBroken && gGood >= 0.0) {
                ctx.gmin = spec.gmin;
                const NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton, workspace);
                bookkeepRung(recover::RescueRung::GminRamp, spec.gmin, nr);
                if (nr.converged) {
                    nrOut = nr;
                    return true;
                }
            }
            ctx.gmin = spec.gmin;
            if (gGood >= 0.0 && gGood <= policy.maxAcceptableGmin) {
                // Degrade gracefully: the solution at a tiny-but-nonzero gmin
                // is accepted rather than losing the whole run.
                x = xGood;
                nrOut = nrGood;
                rescuedGmin = gGood;
                ++result.stats.degradedGminSteps;
                return true;
            }
        }

        // Rung 3: source stepping — ramp the independent sources up from a
        // fraction of their value; each rung must converge, ending at 1.0.
        {
            x = xBackup;
            bool chainOk = true;
            for (double s : policy.sourceSteps) {
                if (s <= 0.0 || s >= 1.0) continue;
                ctx.sourceScale = s;
                const NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton, workspace);
                bookkeepRung(recover::RescueRung::SourceStepping, s, nr);
                if (!nr.converged) {
                    chainOk = false;
                    break;
                }
            }
            if (chainOk) {
                ctx.sourceScale = 1.0;
                const NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton, workspace);
                bookkeepRung(recover::RescueRung::SourceStepping, 1.0, nr);
                if (nr.converged) {
                    nrOut = nr;
                    return true;
                }
            }
            ctx.sourceScale = 1.0;
        }

        // Rung 4: force Backward Euler — trade accuracy for L-stability.
        if (policy.forceBackwardEuler && ctx.method != IntegrationMethod::BackwardEuler) {
            x = xBackup;
            ctx.method = IntegrationMethod::BackwardEuler;
            const NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton, workspace);
            bookkeepRung(recover::RescueRung::ForceBackwardEuler, 1.0, nr);
            if (nr.converged) {
                nrOut = nr;
                return true;
            }
        }

        x = xBackup;
        return false;
    };

    while (t < spec.tstop - 1e-21) {
        // Clamp to the next breakpoint, snapping when nearly there.
        double dtStep = std::min(dt, spec.dtMax);
        if (nextBp < breakpoints.size()) {
            const double toBp = breakpoints[nextBp] - t;
            if (dtStep >= toBp - spec.dtMin) dtStep = toBp;
        }
        dtStep = std::min(dtStep, spec.tstop - t);

        ctx.dt = dtStep;
        ctx.time = t + dtStep;
        ctx.method = beStepsLeft > 0 ? IntegrationMethod::BackwardEuler : spec.method;

        xBackup = x;
        NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton, workspace);
        // Total work includes iterations burned on steps we go on to reject.
        result.newtonIterations += nr.iterations;
        result.stats.stampSeconds += nr.stampSeconds;
        result.stats.factorSeconds += nr.factorSeconds;
        result.stats.factorizations += nr.factorizations;
        result.stats.refactorizations += nr.refactorizations;

        bool rescued = false;
        if (!nr.converged) {
            ++result.rejectedSteps;
            result.rejectedNewtonIterations += nr.iterations;
            if (sink.active())
                sink.event("step.reject", {{"t", ctx.time},
                                           {"dt", dtStep},
                                           {"iters", nr.iterations},
                                           {"maxDelta", nr.maxDelta},
                                           {"failure", newtonFailureName(nr.failure)}});
            x = xBackup;
            // A singular matrix will stay singular at any dt: shrinking the
            // step is pointless, so escalate straight to the rescue ladder.
            if (nr.failure != NewtonFailure::SingularMatrix) {
                dt = dtStep / 4.0;
                if (dt >= spec.dtMin) {
                    beStepsLeft = std::max(beStepsLeft, 1);
                    continue;
                }
            }

            trail.clear();
            if (spec.rescue.enabled) rescued = tryLadder(nr);
            if (!rescued) {
                const NewtonFailure f = nr.failure;
                recover::SimError::Info info;
                info.reason = f == NewtonFailure::SingularMatrix
                                  ? recover::SimErrorReason::SingularMatrix
                              : f == NewtonFailure::NanResidual
                                  ? recover::SimErrorReason::NanResidual
                                  : recover::SimErrorReason::StepUnderflow;
                info.where = "runTransient";
                info.time = ctx.time;
                info.attempted = trail;
                if (sink.active())
                    sink.event("rescue.fail", {{"t", ctx.time},
                                               {"failure", newtonFailureName(f)},
                                               {"attempts", static_cast<long long>(trail.size())}});
                throw recover::SimError(
                    info, f == NewtonFailure::SingularMatrix ? "singular MNA matrix"
                          : f == NewtonFailure::NanResidual  ? "non-finite solver state"
                                                             : "time step underflow");
            }
            ++result.stats.rescuedSteps;
            if (sink.active())
                sink.event("rescue.success", {{"t", ctx.time},
                                              {"gmin", rescuedGmin},
                                              {"attempts", static_cast<long long>(trail.size())}});
            if (obsOn) {
                static obs::Counter& rescues = obs::counter("spice.transient.rescued_steps");
                rescues.add();
            }
        }

        // Accepted: commit device state, record, advance.
        const double tAccept0 = obsOn ? obs::monotonicSeconds() : 0.0;
        for (const auto& dev : circuit.devices()) dev->acceptStep(ctx);
        t = ctx.time;
        result.waveforms.record(t, x);
        if (obsOn) result.stats.acceptSeconds += obs::monotonicSeconds() - tAccept0;
        ++result.acceptedSteps;
        result.stats.dtHistogram.add(dtStep);
        if (nr.iterations > result.stats.worstStepIterations) {
            result.stats.worstStepIterations = nr.iterations;
            result.stats.worstStepTime = t;
            result.stats.worstStepMaxDelta = nr.maxDelta;
        }
        if (sink.active())
            sink.event("step.accept", {{"t", t},
                                       {"dt", dtStep},
                                       {"iters", nr.iterations},
                                       {"maxDelta", nr.maxDelta}});
        if (rescued)
            beStepsLeft = 2;  // a rescued step is a discontinuity of sorts
        else if (beStepsLeft > 0)
            --beStepsLeft;

        const bool hitBp = nextBp < breakpoints.size() &&
                           std::abs(t - breakpoints[nextBp]) <= spec.dtMin;
        if (hitBp) {
            ++nextBp;
            dt = dtInitial;   // restart small after a discontinuity
            beStepsLeft = 2;
        } else if (rescued) {
            dt = dtStep;  // hold: the ladder just barely saved this size
        } else if (nr.iterations <= 8) {
            dt = std::min(dtStep * 1.5, spec.dtMax);
        } else {
            dt = dtStep;  // struggling: hold the step size
        }
    }

    result.finished = true;
    if (obsOn) {
        result.stats.totalSeconds = obs::monotonicSeconds() - tWall0;
        static obs::Counter& runs = obs::counter("spice.transient.runs");
        static obs::Counter& accepted = obs::counter("spice.transient.accepted_steps");
        static obs::Counter& rejected = obs::counter("spice.transient.rejected_steps");
        runs.add();
        accepted.add(result.acceptedSteps);
        rejected.add(result.rejectedSteps);
        span.add({"steps", result.acceptedSteps});
        span.add({"rejected", result.rejectedSteps});
        span.add({"iters", result.newtonIterations});
        span.add({"rescued", result.stats.rescuedSteps});
    }
    return result;
}

}  // namespace fetcam::spice
