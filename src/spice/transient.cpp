#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fetcam::spice {

namespace {

/// Merge, sort and dedupe breakpoints into (0, tstop].
std::vector<double> collectBreakpoints(const Circuit& circuit, double tstop) {
    std::vector<double> bps;
    for (const auto& dev : circuit.devices()) dev->collectBreakpoints(tstop, bps);
    bps.push_back(tstop);
    std::sort(bps.begin(), bps.end());
    std::vector<double> out;
    for (double t : bps) {
        if (t <= 0.0 || t > tstop) continue;
        if (!out.empty() && t - out.back() < 1e-18) continue;
        out.push_back(t);
    }
    return out;
}

}  // namespace

TransientResult runTransient(Circuit& circuit, const TransientSpec& spec) {
    if (spec.tstop <= 0.0) throw std::invalid_argument("runTransient: tstop must be > 0");
    if (spec.dtMax <= 0.0) throw std::invalid_argument("runTransient: dtMax must be > 0");
    const double dtInitial = spec.dtInitial > 0.0 ? spec.dtInitial : spec.dtMax / 100.0;

    std::vector<double> x(static_cast<std::size_t>(circuit.numUnknowns()), 0.0);
    for (const auto& [node, v] : spec.initialConditions) {
        if (node != kGround) x[static_cast<std::size_t>(node) - 1] = v;
    }

    SimContext ctx;
    ctx.mode = AnalysisMode::Transient;
    ctx.method = spec.method;
    ctx.x = &x;
    ctx.time = 0.0;
    ctx.dt = 0.0;
    ctx.gmin = spec.gmin;
    ctx.numNodes = circuit.numNodes();

    for (const auto& dev : circuit.devices()) dev->beginTransient(ctx);

    TransientResult result;
    result.waveforms = Waveforms(circuit.numNodes(), circuit.numBranches());
    result.waveforms.record(0.0, x);

    const std::vector<double> breakpoints = collectBreakpoints(circuit, spec.tstop);
    std::size_t nextBp = 0;

    double t = 0.0;
    double dt = dtInitial;
    // Backward Euler for a couple of steps after t=0 and after every source
    // discontinuity: damps the trapezoidal rule's tendency to ring on steps.
    int beStepsLeft = 2;

    std::vector<double> xBackup;
    while (t < spec.tstop - 1e-21) {
        // Clamp to the next breakpoint, snapping when nearly there.
        double dtStep = std::min(dt, spec.dtMax);
        if (nextBp < breakpoints.size()) {
            const double toBp = breakpoints[nextBp] - t;
            if (dtStep >= toBp - spec.dtMin) dtStep = toBp;
        }
        dtStep = std::min(dtStep, spec.tstop - t);

        ctx.dt = dtStep;
        ctx.time = t + dtStep;
        ctx.method = beStepsLeft > 0 ? IntegrationMethod::BackwardEuler : spec.method;

        xBackup = x;
        const NewtonResult nr = solveNewton(circuit, ctx, x, spec.newton);
        result.newtonIterations += nr.iterations;

        if (!nr.converged) {
            ++result.rejectedSteps;
            x = xBackup;
            dt = dtStep / 4.0;
            if (dt < spec.dtMin)
                throw std::runtime_error("runTransient: time step underflow at t=" +
                                         std::to_string(t));
            beStepsLeft = std::max(beStepsLeft, 1);
            continue;
        }

        // Accepted: commit device state, record, advance.
        for (const auto& dev : circuit.devices()) dev->acceptStep(ctx);
        t = ctx.time;
        result.waveforms.record(t, x);
        ++result.acceptedSteps;
        if (beStepsLeft > 0) --beStepsLeft;

        const bool hitBp = nextBp < breakpoints.size() &&
                           std::abs(t - breakpoints[nextBp]) <= spec.dtMin;
        if (hitBp) {
            ++nextBp;
            dt = dtInitial;   // restart small after a discontinuity
            beStepsLeft = 2;
        } else if (nr.iterations <= 8) {
            dt = std::min(dtStep * 1.5, spec.dtMax);
        } else {
            dt = dtStep;  // struggling: hold the step size
        }
    }

    result.finished = true;
    return result;
}

}  // namespace fetcam::spice
