// Small-signal AC analysis.
//
// Devices are linearized around a DC operating point and stamped into a
// complex MNA system at each analysis frequency: conductances and
// transconductances enter the real part, capacitances as j*omega*C. Sources
// contribute their AC magnitudes (set VoltageSource/CurrentSource
// setAcMagnitude; DC values only fix the operating point).
#pragma once

#include <optional>
#include <vector>

#include "numeric/complex_matrix.hpp"
#include "spice/circuit.hpp"
#include "spice/dcop.hpp"

namespace fetcam::spice {

/// Complex MNA assembler for one frequency point.
class AcStamper {
public:
    AcStamper(int numNodes, int numBranches, double omega);

    double omega() const { return omega_; }

    void addNodeJacobian(NodeId row, NodeId col, numeric::Complex value);
    /// Raw matrix access for branch-based elements. Negative indices (ground
    /// rows/columns) are ignored.
    void addRawJacobian(int row, int col, numeric::Complex value);
    void addRawRhs(int row, numeric::Complex value);
    int branchIndex(int branch) const { return numNodes_ - 1 + branch; }
    int nodeUnknown(NodeId n) const { return n - 1; }  ///< -1 for ground
    void stampConductance(NodeId a, NodeId b, double g);
    void stampCapacitance(NodeId a, NodeId b, double c);
    void stampVccs(NodeId from, NodeId to, NodeId cp, NodeId cn, double g);
    void stampCurrentSource(NodeId from, NodeId to, numeric::Complex i);
    void stampVoltageSource(NodeId p, NodeId n, int branch, numeric::Complex v);

    std::vector<numeric::Complex> solve() const;

private:
    int nodeIndex(NodeId n) const { return n - 1; }
    int numNodes_;
    double omega_;
    numeric::ComplexDenseMatrix a_;
    std::vector<numeric::Complex> rhs_;
};

struct AcSpec {
    std::vector<double> frequencies;  ///< [Hz]

    /// Logarithmic sweep, `pointsPerDecade` points per decade of [fStart, fStop].
    static AcSpec logSweep(double fStart, double fStop, int pointsPerDecade = 10);
};

class AcResult {
public:
    AcResult(std::vector<double> freqs, std::vector<std::vector<numeric::Complex>> sol,
             int numNodes)
        : freqs_(std::move(freqs)), solutions_(std::move(sol)), numNodes_(numNodes) {}

    const std::vector<double>& frequencies() const { return freqs_; }
    std::size_t points() const { return freqs_.size(); }

    /// Complex node voltage phasor at sweep point `idx`.
    numeric::Complex node(std::size_t idx, NodeId n) const;

    /// |V(node)| in dB (20*log10) at sweep point `idx`.
    double magnitudeDb(std::size_t idx, NodeId n) const;
    /// Phase in degrees.
    double phaseDeg(std::size_t idx, NodeId n) const;

    /// -3 dB corner of a node relative to its first-point magnitude; nullopt
    /// if the response never falls 3 dB within the sweep.
    std::optional<double> cornerFrequency(NodeId n) const;

private:
    std::vector<double> freqs_;
    std::vector<std::vector<numeric::Complex>> solutions_;
    int numNodes_;
};

/// Run an AC sweep around the given operating point. The operating point's
/// unknown vector must come from solveDcOp on the same circuit.
AcResult runAc(const Circuit& circuit, const DcOpResult& op, const AcSpec& spec);

}  // namespace fetcam::spice
