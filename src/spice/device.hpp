// Device interface for the MNA engine, plus the companion-model capacitor
// helper every charge-storing device builds on.
#pragma once

#include <string>
#include <vector>

#include "spice/mna.hpp"
#include "spice/types.hpp"

namespace fetcam::spice {

class AcStamper;  // small-signal assembler (spice/ac.hpp)

/// Base class for all circuit elements.
///
/// Lifecycle per transient step:
///   1. The solver proposes a candidate solution x at time t+dt.
///   2. stamp() is called (possibly many times, once per Newton iteration)
///      to add the device's linearized companion model into the MNA system.
///   3. When Newton converges and the step is accepted, acceptStep() is
///      called exactly once so the device can commit internal state
///      (capacitor charge, ferroelectric polarization, ReRAM filament, ...)
///      and integrate its energy.
class Device {
public:
    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const std::string& name() const { return name_; }

    /// Stamp the linearized model at the candidate solution in `ctx`.
    virtual void stamp(Mna& mna, const SimContext& ctx) = 0;

    /// Stamp the small-signal model linearized at the operating point in
    /// `opCtx` (conductances real, capacitances as j*omega*C). Devices that
    /// don't override this are invisible to AC analysis.
    virtual void stampAc(AcStamper& mna, const SimContext& opCtx) const {
        (void)mna;
        (void)opCtx;
    }

    /// Commit state after an accepted step (no-op for memoryless devices).
    virtual void acceptStep(const SimContext& ctx) { (void)ctx; }

    /// Called once before a transient run starts (reset per-run accumulators
    /// that depend on the initial condition).
    virtual void beginTransient(const SimContext& ctx) { (void)ctx; }

    /// Append waveform discontinuity times in (0, tstop] (source edges).
    virtual void collectBreakpoints(double tstop, std::vector<double>& bps) const {
        (void)tstop;
        (void)bps;
    }

    /// Energy absorbed by the device since the start of the transient, in
    /// joules: integral of v(t)*i(t) with the passive sign convention.
    /// Negative for elements delivering energy (sources).
    virtual double energy() const { return 0.0; }

    /// Terminal current at the last accepted solution (device-defined
    /// reference direction); used by probes and tests.
    virtual double current() const { return 0.0; }

private:
    std::string name_;
};

/// Two-terminal linear capacitor companion model, usable standalone or
/// embedded inside a composite device (MOSFET gate caps, FeFET stack, ...).
///
/// Integration: trapezoidal by default; the owner can force backward Euler
/// for the step following a discontinuity.
class CompanionCap {
public:
    CompanionCap() = default;
    explicit CompanionCap(double capacitance) : c_(capacitance) {}

    void setCapacitance(double c) { c_ = c; }
    double capacitance() const { return c_; }

    /// Reset history to a known initial voltage (start of transient).
    void reset(double v0) {
        vPrev_ = v0;
        iPrev_ = 0.0;
    }

    /// Stamp the companion model for voltage v(a)-v(b).
    /// In DC mode stamps nothing (open circuit).
    void stamp(Mna& mna, const SimContext& ctx, NodeId a, NodeId b) const {
        if (ctx.mode == AnalysisMode::Dc || ctx.dt <= 0.0 || c_ <= 0.0) return;
        const auto [geq, ieq] = companion(ctx);
        mna.stampConductance(a, b, geq);
        // Equivalent current source from a to b of value ieq.
        mna.stampCurrentSource(a, b, ieq);
    }

    /// Current through the capacitor (a->b) at candidate voltage vab.
    double currentAt(double vab, const SimContext& ctx) const {
        if (ctx.mode == AnalysisMode::Dc || ctx.dt <= 0.0 || c_ <= 0.0) return 0.0;
        const auto [geq, ieq] = companion(ctx);
        return geq * vab + ieq;
    }

    /// Commit the accepted voltage; returns the current at the accepted point.
    double accept(double vab, const SimContext& ctx) {
        const double i = currentAt(vab, ctx);
        vPrev_ = vab;
        iPrev_ = i;
        return i;
    }

    double vPrev() const { return vPrev_; }
    double iPrev() const { return iPrev_; }

private:
    /// Companion pair (geq, ieq): i = geq*v + ieq.
    std::pair<double, double> companion(const SimContext& ctx) const {
        if (ctx.method == IntegrationMethod::Trapezoidal) {
            const double geq = 2.0 * c_ / ctx.dt;
            return {geq, -(geq * vPrev_ + iPrev_)};
        }
        const double geq = c_ / ctx.dt;  // backward Euler
        return {geq, -geq * vPrev_};
    }

    double c_ = 0.0;
    double vPrev_ = 0.0;
    double iPrev_ = 0.0;
};

/// Trapezoidal power integrator: devices call add() once per accepted step
/// with their instantaneous absorbed power; it accumulates joules.
class EnergyIntegrator {
public:
    void reset() {
        energy_ = 0.0;
        pPrev_ = 0.0;
        primed_ = false;
    }

    void add(double power, double dt) {
        if (primed_) energy_ += 0.5 * (power + pPrev_) * dt;
        pPrev_ = power;
        primed_ = true;
    }

    double energy() const { return energy_; }

private:
    double energy_ = 0.0;
    double pPrev_ = 0.0;
    bool primed_ = false;
};

}  // namespace fetcam::spice
